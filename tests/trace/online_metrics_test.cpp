// The bit-identity contract of the streaming metrics path: the report
// folded online (live at the engine sink, or replayed from a stream file)
// must equal metrics::analyze on the materialized Trace field for field —
// exact double equality, no tolerances. 200 seeds sweep schedulers,
// algorithms and configurations through the full
// writer -> reader -> accumulator round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/trace_sink.hpp"
#include "metrics/configurations.hpp"
#include "metrics/online.hpp"
#include "metrics/stats.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"
#include "trace/online_metrics.hpp"
#include "trace/stream_reader.hpp"
#include "trace/stream_writer.hpp"

namespace cohesion::trace {
namespace {

namespace fs = std::filesystem;
using geom::Vec2;

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(
            (fs::temp_directory_path() / ("cohesion_online_test_" + tag + ".cohtrace")).string()) {}
  ~TempFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::unique_ptr<core::Scheduler> make_scheduler(std::uint64_t seed, std::size_t n) {
  switch (seed % 4) {
    case 0:
      return std::make_unique<sched::FSyncScheduler>(n);
    case 1: {
      sched::SSyncScheduler::Params p;
      p.seed = seed;
      p.xi = seed % 3 == 0 ? 0.5 : 1.0;
      return std::make_unique<sched::SSyncScheduler>(n, p);
    }
    case 2: {
      sched::KAsyncScheduler::Params p;
      p.seed = seed;
      p.k = 1 + seed % 3;
      return std::make_unique<sched::KAsyncScheduler>(n, p);
    }
    default: {
      sched::KNestAScheduler::Params p;
      p.seed = seed;
      p.k = 1 + seed % 2;
      return std::make_unique<sched::KNestAScheduler>(n, p);
    }
  }
}

std::unique_ptr<core::Algorithm> make_algorithm(std::uint64_t seed) {
  switch (seed % 3) {
    case 0:
      return std::make_unique<algo::KknpsAlgorithm>(algo::KknpsAlgorithm::Params{.k = 1});
    case 1:
      return std::make_unique<algo::AndoAlgorithm>(1.0);
    default:
      return std::make_unique<algo::CogAlgorithm>();
  }
}

std::vector<Vec2> make_initial(std::uint64_t seed, std::size_t n, double v) {
  switch (seed % 3) {
    case 0:
      return metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), v, seed + 1);
    case 1:
      return metrics::line_configuration(n, v);
    default:
      return metrics::grid_configuration(n, 0.8 * v);
  }
}

void expect_identical_reports(const metrics::ConvergenceReport& a,
                              const metrics::ConvergenceReport& b, std::uint64_t seed,
                              const char* what) {
  EXPECT_EQ(a.converged, b.converged) << what << " seed " << seed;
  EXPECT_EQ(a.initial_diameter, b.initial_diameter) << what << " seed " << seed;
  EXPECT_EQ(a.final_diameter, b.final_diameter) << what << " seed " << seed;
  EXPECT_EQ(a.rounds, b.rounds) << what << " seed " << seed;
  EXPECT_EQ(a.rounds_to_halve, b.rounds_to_halve) << what << " seed " << seed;
  EXPECT_EQ(a.activations, b.activations) << what << " seed " << seed;
  EXPECT_EQ(a.cohesive, b.cohesive) << what << " seed " << seed;
  EXPECT_EQ(a.worst_stretch, b.worst_stretch) << what << " seed " << seed;
}

TEST(OnlineMetrics, TwoHundredSeedStreamRoundTripIsByteIdentical) {
  // The ISSUE-mandated sweep: materialize a trace, prove the single-pass
  // analyze() against the rescan oracle, then push the records through
  // writer -> file -> reader -> accumulator and demand the same bytes.
  TempFile file("roundtrip");
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const std::size_t n = 6 + seed % 14;
    const double v = 1.0;
    const double epsilon = 0.05;
    auto initial = make_initial(seed, n, v);
    auto algorithm = make_algorithm(seed);
    auto scheduler = make_scheduler(seed, n);
    core::EngineConfig config;
    config.seed = seed;
    core::Engine engine(initial, *algorithm, *scheduler, config);
    engine.run(200 + (seed % 4) * 100);
    const core::Trace& trace = engine.trace();

    const metrics::ConvergenceReport reference = metrics::analyze(trace, v, epsilon);
    const metrics::ConvergenceReport oracle = metrics::analyze_rescan(trace, v, epsilon);
    expect_identical_reports(reference, oracle, seed, "analyze vs rescan");

    StreamHeader header;
    header.fingerprint = seed;
    header.initial = trace.initial_configuration();
    header.visibility_radius = v;
    header.stop_epsilon = epsilon;
    {
      StreamTraceWriter writer(file.path(), header,
                               {.flush_every_records = 32, .index_every_records = 64});
      for (const core::ActivationRecord& rec : trace.records()) writer.append(rec);
      writer.finish();
    }

    StreamTraceReader reader(file.path());
    metrics::ConvergenceAccumulator acc(reader.header().initial, reader.header().visibility_radius,
                                        reader.header().stop_epsilon);
    core::ActivationRecord rec;
    while (reader.next(rec)) acc.add(rec);
    ASSERT_TRUE(reader.closed_cleanly()) << "seed " << seed;
    ASSERT_EQ(reader.records_read(), trace.records().size()) << "seed " << seed;
    const metrics::ConvergenceReport replayed = acc.finish();
    expect_identical_reports(replayed, reference, seed, "stream replay");
  }
}

TEST(OnlineMetrics, LiveSinkOnBoundedEngineMatchesMemoryPath) {
  // The production wiring: a record_history = false engine feeding
  // OnlineMetrics through its sink must reproduce the memory engine's
  // report, end time and final configuration exactly.
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const std::size_t n = 8 + seed % 9;
    const double v = 1.0;
    const double epsilon = 0.05;
    auto initial = make_initial(seed, n, v);
    auto algorithm = make_algorithm(seed);
    core::EngineConfig config;
    config.seed = seed;

    auto sched_mem = make_scheduler(seed, n);
    core::Engine memory(initial, *algorithm, *sched_mem, config);

    auto sched_stream = make_scheduler(seed, n);
    config.record_history = false;
    core::Engine bounded(initial, *algorithm, *sched_stream, config);
    OnlineMetrics online(initial, v, epsilon);
    core::Trace shadow(initial);  // external materialization through the seam
    std::vector<core::TraceSink*> sinks = {&online, &shadow};
    core::TeeSink tee(sinks);
    bounded.set_trace_sink(&tee);

    const std::size_t steps = 300;
    ASSERT_EQ(memory.run(steps), bounded.run(steps)) << "seed " << seed;
    tee.finish();

    // The seam forwards every record unchanged...
    ASSERT_EQ(shadow.records().size(), memory.trace().records().size()) << "seed " << seed;
    for (std::size_t i = 0; i < shadow.records().size(); ++i) {
      EXPECT_EQ(shadow.records()[i].activation.t_look,
                memory.trace().records()[i].activation.t_look)
          << "seed " << seed << " rec " << i;
      EXPECT_EQ(shadow.records()[i].realized, memory.trace().records()[i].realized)
          << "seed " << seed << " rec " << i;
    }
    // ...the bounded engine keeps no history of its own...
    EXPECT_TRUE(bounded.trace().records().empty()) << "seed " << seed;
    EXPECT_EQ(bounded.end_time(), memory.end_time()) << "seed " << seed;
    const auto cfg_mem = memory.current_configuration();
    const auto cfg_bounded = bounded.current_configuration();
    ASSERT_EQ(cfg_mem.size(), cfg_bounded.size()) << "seed " << seed;
    for (std::size_t r = 0; r < cfg_mem.size(); ++r) {
      EXPECT_EQ(cfg_mem[r], cfg_bounded[r]) << "seed " << seed << " robot " << r;
    }
    // ...and the live report equals the batch one.
    const metrics::ConvergenceReport reference = metrics::analyze(memory.trace(), v, epsilon);
    expect_identical_reports(online.report(), reference, seed, "live sink");
  }
}

TEST(OnlineMetrics, AccumulatorSideChannelsMatchTrace) {
  const std::uint64_t seed = 6;  // KAsync (seed % 4 == 2): distinct look times
  const std::size_t n = 12;
  const double v = 1.0;
  const double epsilon = 0.05;
  auto initial = make_initial(seed, n, v);
  auto algorithm = make_algorithm(seed);
  auto scheduler = make_scheduler(seed, n);
  core::EngineConfig config;
  config.seed = seed;
  core::Engine engine(initial, *algorithm, *scheduler, config);
  engine.run(400);
  const core::Trace& trace = engine.trace();

  metrics::ConvergenceAccumulator acc(trace.initial_configuration(), v, epsilon,
                                      /*track_min_pairwise=*/true);
  for (const core::ActivationRecord& rec : trace.records()) acc.add(rec);
  // Live counters are exact before finish().
  EXPECT_EQ(acc.activations(), trace.records().size());
  EXPECT_EQ(acc.end_time(), trace.end_time());
  ASSERT_EQ(acc.per_robot_activations().size(), n);
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(acc.per_robot_activations()[r], trace.activation_count(r)) << "robot " << r;
  }

  const metrics::ConvergenceReport report = acc.finish();
  expect_identical_reports(report, metrics::analyze(trace, v, epsilon), seed, "side channels");

  // windowed_min_pairwise folds exactly the analyze() sample windows:
  // t = 0, every round boundary, and end_time + 1.
  std::vector<core::Time> times{0.0};
  for (const core::Time t : trace.round_boundaries()) times.push_back(t);
  times.push_back(trace.end_time() + 1.0);
  double expected = 0.0;
  bool first = true;
  for (const core::Time t : times) {
    const double d = metrics::min_pairwise_distance(trace.configuration(t));
    expected = first ? d : std::min(expected, d);
    first = false;
  }
  EXPECT_EQ(acc.windowed_min_pairwise(), expected);

  // The convergence-epsilon window: with epsilon = the initial diameter the
  // very first sample already qualifies.
  metrics::ConvergenceAccumulator generous(trace.initial_configuration(), v,
                                           report.initial_diameter);
  for (const core::ActivationRecord& rec : trace.records()) generous.add(rec);
  (void)generous.finish();
  ASSERT_TRUE(generous.first_converged_sample().has_value());
  EXPECT_EQ(*generous.first_converged_sample(), 0u);
}

TEST(OnlineMetrics, BackwardLookWithinSlackMatchesOracle) {
  // Looks up to 1e-12 before the frontier (legal per the scheduler
  // contract) drive the accumulator's deferred-finalization logic: a
  // pending round-boundary sample must only finalize once a record's Look
  // time provably clears it. The scripted run from the engine-equivalence
  // suite exercises exactly that; the online report must still match.
  const algo::CogAlgorithm cog;
  const std::vector<Vec2> initial{{0.0, 0.0}, {0.6, 0.0}, {0.3, 0.5}, {-0.4, 0.2}};
  const double eps = 5e-13;
  const std::vector<core::Activation> script{
      {0, 1.0, 1.1, 1.6, 1.0},
      {1, 1.0 - eps, 1.0, 1.4, 1.0},
      {2, 1.0 - eps / 2, 1.2, 1.5, 0.7},
      {3, 2.0, 2.1, 2.4, 1.0},
      {0, 3.0, 3.0, 3.3, 1.0},
      {1, 3.0 - eps, 3.1, 3.2, 1.0},
      {2, 4.0, 4.0, 4.0, 1.0},
      {3, 4.0, 4.2, 4.6, 1.0},
      {0, 5.0, 5.1, 5.2, 1.0},
      {1, 5.0 - 9e-13, 5.0, 5.1, 1.0},
      {2, 5.0 - 1.8e-12, 5.3, 5.4, 1.0},
  };
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;

  sched::ScriptedScheduler sched_mem(script);
  core::Engine memory(initial, cog, sched_mem, cfg);
  ASSERT_EQ(memory.run(script.size()), script.size());

  sched::ScriptedScheduler sched_live(script);
  cfg.record_history = false;
  core::Engine bounded(initial, cog, sched_live, cfg);
  OnlineMetrics online(initial, 1.0, 0.05);
  bounded.set_trace_sink(&online);
  ASSERT_EQ(bounded.run(script.size()), script.size());

  const metrics::ConvergenceReport reference = metrics::analyze(memory.trace(), 1.0, 0.05);
  expect_identical_reports(reference, metrics::analyze_rescan(memory.trace(), 1.0, 0.05), 0,
                           "scripted rescan");
  expect_identical_reports(online.report(), reference, 0, "scripted live");
}

TEST(OnlineMetrics, FinishTwiceThrows) {
  metrics::ConvergenceAccumulator acc({{0.0, 0.0}, {0.5, 0.0}}, 1.0, 0.05);
  (void)acc.finish();
  EXPECT_THROW((void)acc.finish(), std::logic_error);
  // The sink adapter, by contrast, must be idempotent (TraceSink contract).
  OnlineMetrics online({{0.0, 0.0}, {0.5, 0.0}}, 1.0, 0.05);
  online.finish();
  online.finish();
  EXPECT_EQ(online.report().activations, 0u);
}

}  // namespace
}  // namespace cohesion::trace
