// Crash-safety fuzz over the binary framing: a stream cut at *any* byte
// must replay as exactly the committed prefix — every activation frame that
// fits entirely before the cut, bit-identical, nothing after it — with the
// stream reported truncated. Same for a flipped byte: the frame checksum
// catches it and iteration stops at the last intact frame.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "trace/stream_format.hpp"
#include "trace/stream_reader.hpp"
#include "trace/stream_writer.hpp"

namespace cohesion::trace {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kIndexEvery = 16;

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_((fs::temp_directory_path() / ("cohesion_trunc_fuzz_" + tag + ".cohtrace")).string()) {
  }
  ~TempFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_prefix(const std::string& path, const std::vector<char>& bytes, std::size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(len));
}

/// Byte offset at which each activation frame ends, mirroring the writer's
/// layout: header, then per record a 105-byte 'A' frame plus a 33-byte 'X'
/// frame after every kIndexEvery-th record. The flush cadence moves bytes
/// to the OS earlier or later but never changes the byte sequence.
std::vector<std::size_t> activation_frame_ends(std::size_t header_size, std::size_t records) {
  std::vector<std::size_t> ends;
  ends.reserve(records);
  std::size_t offset = header_size;
  for (std::size_t i = 1; i <= records; ++i) {
    offset += frame_size(kActivationPayloadSize);
    ends.push_back(offset);
    if (kIndexEvery > 0 && i % kIndexEvery == 0) offset += frame_size(kIndexPayloadSize);
  }
  return ends;
}

struct Fixture {
  core::Trace trace;
  std::vector<char> bytes;    // the complete, cleanly closed stream
  std::size_t header_size = 0;
  std::vector<std::size_t> frame_ends;
};

Fixture make_fixture(std::uint64_t seed, std::size_t n, std::size_t steps) {
  Fixture fx;
  const double v = 1.0;
  auto initial = metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), v, seed);
  algo::KknpsAlgorithm algorithm({.k = 1});
  sched::KAsyncScheduler::Params p;
  p.seed = seed;
  p.k = 2;
  sched::KAsyncScheduler scheduler(n, p);
  core::EngineConfig config;
  config.seed = seed;
  core::Engine engine(std::move(initial), algorithm, scheduler, config);
  engine.run(steps);
  fx.trace = engine.trace();

  TempFile full("full");
  StreamHeader header;
  header.fingerprint = seed;
  header.initial = fx.trace.initial_configuration();
  StreamTraceWriter writer(full.path(), header,
                           {.flush_every_records = 5, .index_every_records = kIndexEvery});
  for (const core::ActivationRecord& rec : fx.trace.records()) writer.append(rec);
  writer.finish();
  fx.bytes = read_all(full.path());

  fx.header_size = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 16 * n + 4;
  fx.frame_ends = activation_frame_ends(fx.header_size, fx.trace.records().size());
  // Sanity: layout model matches the writer (file = frames + 'E' frame).
  EXPECT_EQ(fx.bytes.size(), fx.frame_ends.back() +
                                 (fx.trace.records().size() % kIndexEvery == 0
                                      ? frame_size(kIndexPayloadSize)
                                      : 0) +
                                 frame_size(kEndPayloadSize));
  return fx;
}

/// Committed prefix = activation frames wholly before the cut.
std::size_t expected_records(const Fixture& fx, std::size_t cut) {
  std::size_t count = 0;
  while (count < fx.frame_ends.size() && fx.frame_ends[count] <= cut) ++count;
  return count;
}

void expect_prefix(const Fixture& fx, const std::string& path, std::size_t cut) {
  const std::size_t want = expected_records(fx, cut);
  StreamTraceReader reader(path);
  core::ActivationRecord rec;
  std::size_t got = 0;
  while (reader.next(rec)) {
    ASSERT_LT(got, want) << "cut at " << cut << " yielded a record past the committed prefix";
    const core::ActivationRecord& ref = fx.trace.records()[got];
    ASSERT_EQ(rec.activation.robot, ref.activation.robot) << "cut " << cut << " rec " << got;
    ASSERT_EQ(rec.activation.t_look, ref.activation.t_look) << "cut " << cut << " rec " << got;
    ASSERT_EQ(rec.activation.t_move_end, ref.activation.t_move_end)
        << "cut " << cut << " rec " << got;
    ASSERT_EQ(rec.from, ref.from) << "cut " << cut << " rec " << got;
    ASSERT_EQ(rec.realized, ref.realized) << "cut " << cut << " rec " << got;
    ++got;
  }
  EXPECT_EQ(got, want) << "cut at " << cut;
  EXPECT_EQ(reader.records_read(), want) << "cut at " << cut;
  EXPECT_TRUE(reader.truncated()) << "cut at " << cut;
  EXPECT_FALSE(reader.closed_cleanly()) << "cut at " << cut;
}

TEST(TruncationFuzz, EveryCutYieldsExactlyTheCommittedPrefix) {
  const Fixture fx = make_fixture(3, 10, 220);
  ASSERT_GT(fx.trace.records().size(), 2 * kIndexEvery);

  // Cut points: every frame boundary and its neighbours (the off-by-one
  // cases framing must get right), plus a coarse sweep across all bytes.
  std::set<std::size_t> cuts;
  for (const std::size_t end : fx.frame_ends) {
    if (end + 1 < fx.bytes.size()) {
      cuts.insert(end - 1);
      cuts.insert(end);
      cuts.insert(end + 1);
    }
  }
  for (std::size_t cut = fx.header_size; cut < fx.bytes.size(); cut += 13) cuts.insert(cut);

  TempFile torn("torn");
  for (const std::size_t cut : cuts) {
    write_prefix(torn.path(), fx.bytes, cut);
    expect_prefix(fx, torn.path(), cut);
  }
}

TEST(TruncationFuzz, MissingEndFrameIsTruncatedEvenWithAllRecords) {
  const Fixture fx = make_fixture(5, 8, 120);
  // Cut exactly the 'E' frame (and a trailing 'X', if any): every record
  // survives but the stream must still be flagged torn, not clean.
  std::size_t cut = fx.frame_ends.back();
  if (fx.trace.records().size() % kIndexEvery == 0) cut += frame_size(kIndexPayloadSize);
  TempFile torn("noend");
  write_prefix(torn.path(), fx.bytes, cut);

  StreamTraceReader reader(torn.path());
  core::ActivationRecord rec;
  std::size_t got = 0;
  while (reader.next(rec)) ++got;
  EXPECT_EQ(got, fx.trace.records().size());
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.closed_cleanly());
}

TEST(TruncationFuzz, FlippedPayloadByteStopsAtLastIntactFrame) {
  const Fixture fx = make_fixture(9, 8, 120);
  const std::size_t total = fx.trace.records().size();
  for (const std::size_t victim : {std::size_t{0}, total / 2, total - 1}) {
    std::vector<char> bytes = fx.bytes;
    // Flip a byte in the middle of the victim frame's payload.
    const std::size_t frame_end = fx.frame_ends[victim];
    const std::size_t at = frame_end - frame_size(kActivationPayloadSize) + 5 + 17;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x08);
    TempFile corrupt("bitflip");
    write_prefix(corrupt.path(), bytes, bytes.size());

    StreamTraceReader reader(corrupt.path());
    core::ActivationRecord rec;
    std::size_t got = 0;
    while (reader.next(rec)) ++got;
    EXPECT_EQ(got, victim) << "victim " << victim;
    EXPECT_TRUE(reader.truncated()) << "victim " << victim;
  }
}

}  // namespace
}  // namespace cohesion::trace
