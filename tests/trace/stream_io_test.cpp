// Writer -> reader round trips for the binary activation-stream format:
// header fields, record bit-identity, footer, index-chain seeking, TeeSink
// fan-out, and the reader's actionable rejections (foreign magic,
// unsupported version, corrupt header).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/trace_sink.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "trace/stream_format.hpp"
#include "trace/stream_reader.hpp"
#include "trace/stream_writer.hpp"

namespace cohesion::trace {
namespace {

namespace fs = std::filesystem;
using geom::Vec2;

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_((fs::temp_directory_path() / ("cohesion_stream_io_" + tag + ".cohtrace")).string()) {}
  ~TempFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A short real run: the records exercise every payload field (fractional
/// realizations, varying seen counts, distinct times).
core::Trace make_reference_trace(std::uint64_t seed, std::size_t n, std::size_t steps) {
  const double v = 1.0;
  auto initial = metrics::random_connected_configuration(n, 0.4 * std::sqrt(double(n)), v, seed);
  algo::KknpsAlgorithm algorithm({.k = 1});
  sched::KAsyncScheduler::Params p;
  p.seed = seed;
  p.k = 2;
  sched::KAsyncScheduler scheduler(n, p);
  core::EngineConfig config;
  config.seed = seed;
  core::Engine engine(std::move(initial), algorithm, scheduler, config);
  engine.run(steps);
  return engine.trace();
}

void expect_identical_record(const core::ActivationRecord& a, const core::ActivationRecord& b,
                             std::size_t i) {
  EXPECT_EQ(a.activation.robot, b.activation.robot) << "rec " << i;
  EXPECT_EQ(a.activation.t_look, b.activation.t_look) << "rec " << i;
  EXPECT_EQ(a.activation.t_move_start, b.activation.t_move_start) << "rec " << i;
  EXPECT_EQ(a.activation.t_move_end, b.activation.t_move_end) << "rec " << i;
  EXPECT_EQ(a.activation.realized_fraction, b.activation.realized_fraction) << "rec " << i;
  EXPECT_EQ(a.from, b.from) << "rec " << i;
  EXPECT_EQ(a.planned, b.planned) << "rec " << i;
  EXPECT_EQ(a.realized, b.realized) << "rec " << i;
  EXPECT_EQ(a.seen, b.seen) << "rec " << i;
}

void write_stream(const std::string& path, const core::Trace& trace, std::uint64_t fingerprint,
                  StreamWriterOptions options) {
  StreamHeader header;
  header.fingerprint = fingerprint;
  header.initial = trace.initial_configuration();
  header.visibility_radius = 1.0;
  header.stop_epsilon = 0.05;
  StreamTraceWriter writer(path, header, options);
  for (const core::ActivationRecord& rec : trace.records()) writer.append(rec);
  writer.finish();
}

TEST(StreamIo, HeaderRoundTrip) {
  TempFile file("header");
  const std::vector<Vec2> initial = {{0.0, 0.0}, {0.25, -1.5}, {3.75, 2.125}};
  StreamHeader header;
  header.fingerprint = 0x0123456789abcdefull;
  header.initial = initial;
  header.visibility_radius = 0.875;
  header.stop_epsilon = 0.03125;
  {
    StreamTraceWriter writer(file.path(), header);
    writer.finish();
  }
  StreamTraceReader reader(file.path());
  EXPECT_EQ(reader.header().fingerprint, header.fingerprint);
  EXPECT_EQ(reader.header().visibility_radius, header.visibility_radius);
  EXPECT_EQ(reader.header().stop_epsilon, header.stop_epsilon);
  ASSERT_EQ(reader.header().initial.size(), initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_EQ(reader.header().initial[i], initial[i]) << "robot " << i;
  }
  core::ActivationRecord rec;
  EXPECT_FALSE(reader.next(rec));
  EXPECT_TRUE(reader.closed_cleanly());
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.records_read(), 0u);
}

TEST(StreamIo, RecordsRoundTripBitIdentical) {
  const core::Trace trace = make_reference_trace(7, 16, 600);
  ASSERT_GT(trace.records().size(), 100u);
  TempFile file("records");
  // Small cadences so the round trip crosses many flush and index
  // boundaries, not just one buffered blob.
  write_stream(file.path(), trace, 42, {.flush_every_records = 7, .index_every_records = 32});

  StreamTraceReader reader(file.path());
  core::ActivationRecord rec;
  std::size_t i = 0;
  while (reader.next(rec)) {
    ASSERT_LT(i, trace.records().size());
    expect_identical_record(rec, trace.records()[i], i);
    ++i;
  }
  EXPECT_EQ(i, trace.records().size());
  EXPECT_TRUE(reader.closed_cleanly());
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.records_read(), trace.records().size());
  EXPECT_EQ(reader.end_time(), trace.end_time());
}

TEST(StreamIo, FooterReadsWithoutForwardScan) {
  const core::Trace trace = make_reference_trace(11, 12, 300);
  TempFile indexed("footer_indexed");
  write_stream(indexed.path(), trace, 9, {.flush_every_records = 64, .index_every_records = 50});
  const auto footer = StreamTraceReader::read_footer(indexed.path());
  ASSERT_TRUE(footer.has_value());
  EXPECT_EQ(footer->total_records, trace.records().size());
  EXPECT_EQ(footer->end_time, trace.end_time());
  EXPECT_NE(footer->last_index_offset, 0u);

  TempFile unindexed("footer_unindexed");
  write_stream(unindexed.path(), trace, 9, {.flush_every_records = 64, .index_every_records = 0});
  const auto flat = StreamTraceReader::read_footer(unindexed.path());
  ASSERT_TRUE(flat.has_value());
  EXPECT_EQ(flat->total_records, trace.records().size());
  EXPECT_EQ(flat->last_index_offset, 0u);  // no 'X' frames to anchor

  // A torn file has no trustworthy footer.
  const auto size = fs::file_size(indexed.path());
  fs::resize_file(indexed.path(), size - 8);
  EXPECT_FALSE(StreamTraceReader::read_footer(indexed.path()).has_value());
}

TEST(StreamIo, SeekToLandsOnExactRecord) {
  const core::Trace trace = make_reference_trace(13, 12, 200);
  const std::size_t total = trace.records().size();
  ASSERT_GT(total, 40u);
  TempFile indexed("seek_indexed");
  write_stream(indexed.path(), trace, 1, {.flush_every_records = 16, .index_every_records = 16});

  StreamTraceReader reader(indexed.path());
  core::ActivationRecord rec;
  const std::size_t targets[] = {0, 1, 15, 16, 17, 33, total - 1};
  for (const std::size_t target : targets) {
    ASSERT_TRUE(reader.seek_to(target)) << "target " << target;
    ASSERT_TRUE(reader.next(rec)) << "target " << target;
    expect_identical_record(rec, trace.records()[target], target);
  }
  // Seeking backwards after reading forward must work too (restart path).
  ASSERT_TRUE(reader.seek_to(2));
  ASSERT_TRUE(reader.next(rec));
  expect_identical_record(rec, trace.records()[2], 2);
  EXPECT_FALSE(reader.seek_to(total));  // one past the end

  // Without 'X' frames seek degrades to a forward scan, same results.
  TempFile unindexed("seek_unindexed");
  write_stream(unindexed.path(), trace, 1, {.flush_every_records = 16, .index_every_records = 0});
  StreamTraceReader flat(unindexed.path());
  ASSERT_TRUE(flat.seek_to(total - 3));
  ASSERT_TRUE(flat.next(rec));
  expect_identical_record(rec, trace.records()[total - 3], total - 3);
}

TEST(StreamIo, TeeSinkFansOutToEverySink) {
  const core::Trace trace = make_reference_trace(17, 10, 150);
  TempFile file("tee");
  core::Trace copy(trace.initial_configuration());
  StreamHeader header;
  header.initial = trace.initial_configuration();
  StreamTraceWriter writer(file.path(), header, {.flush_every_records = 8});
  std::vector<core::TraceSink*> sinks = {&copy, &writer};
  core::TeeSink tee(sinks);
  for (const core::ActivationRecord& rec : trace.records()) tee.append(rec);
  tee.finish();
  EXPECT_TRUE(writer.finished());  // finish() propagated through the tee
  ASSERT_EQ(copy.records().size(), trace.records().size());
  for (std::size_t i = 0; i < trace.records().size(); ++i) {
    expect_identical_record(copy.records()[i], trace.records()[i], i);
  }
  StreamTraceReader reader(file.path());
  core::ActivationRecord rec;
  std::size_t i = 0;
  while (reader.next(rec)) expect_identical_record(rec, trace.records()[i++], i);
  EXPECT_EQ(i, trace.records().size());
  EXPECT_TRUE(reader.closed_cleanly());
}

TEST(StreamIo, RejectsForeignMagic) {
  TempFile file("magic");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "NOTATRCEgarbage that is long enough to hold a header prefix....";
  }
  try {
    StreamTraceReader reader(file.path());
    FAIL() << "foreign magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("COHTRACE"), std::string::npos) << e.what();
  }
}

TEST(StreamIo, RejectsUnsupportedVersionByName) {
  TempFile file("version");
  {
    // Hand-build a header with version 99 and a *valid* checksum, so the
    // version check (not the checksum check) must be the one that fires.
    std::vector<char> hdr;
    hdr.insert(hdr.end(), kStreamMagic, kStreamMagic + sizeof(kStreamMagic));
    put_u32(hdr, 99);
    put_u32(hdr, 0);
    put_u64(hdr, 0);
    put_u64(hdr, 0);  // zero robots
    put_f64(hdr, 1.0);
    put_f64(hdr, 0.0);
    put_u32(hdr, fnv1a32(hdr.data(), hdr.size()));
    std::ofstream out(file.path(), std::ios::binary);
    out.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
  }
  try {
    StreamTraceReader reader(file.path());
    FAIL() << "future version accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 99"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(kFormatVersion)), std::string::npos) << what;
  }
}

TEST(StreamIo, RejectsCorruptHeaderChecksum) {
  const core::Trace trace = make_reference_trace(19, 8, 50);
  TempFile file("checksum");
  write_stream(file.path(), trace, 5, {});
  {
    // Flip one byte inside the initial configuration.
    std::fstream f(file.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(48 + 3);
    char b = 0;
    f.get(b);
    f.seekp(48 + 3);
    f.put(static_cast<char>(b ^ 0x40));
  }
  try {
    StreamTraceReader reader(file.path());
    FAIL() << "corrupt header accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(StreamIo, RejectsTruncatedHeader) {
  const core::Trace trace = make_reference_trace(23, 8, 50);
  TempFile file("short_header");
  write_stream(file.path(), trace, 5, {});
  fs::resize_file(file.path(), 20);  // ends before the initial configuration
  EXPECT_THROW(StreamTraceReader reader(file.path()), std::runtime_error);
  fs::resize_file(file.path(), 10);  // ends inside the magic/prefix
  EXPECT_THROW(StreamTraceReader reader(file.path()), std::runtime_error);
  EXPECT_THROW(StreamTraceReader missing("/nonexistent/dir/x.cohtrace"), std::runtime_error);
}

}  // namespace
}  // namespace cohesion::trace
