#include "adversary/spiral.hpp"

#include <gtest/gtest.h>

#include "core/validators.hpp"

namespace cohesion::adversary {
namespace {

TEST(SpiralAdversary, BreaksVisibilityUnderUnboundedNesting) {
  // The Section-7 headline: an initially connected configuration is
  // disconnected by an adversarial NestA scheduler of unbounded depth.
  const SpiralExperimentResult r = run_spiral_experiment(/*psi=*/0.30, /*edge_scale=*/0.92);
  EXPECT_TRUE(r.initially_connected);
  EXPECT_TRUE(r.visibility_broken)
      << "final |X_A X_B| = " << r.final_separation_ab << " (need > 1)";
  EXPECT_GT(r.zeta, 0.1);  // X_A was forced to move a macroscopic distance
  EXPECT_TRUE(r.schedule_nested);
  // Unbounded asynchrony was genuinely used: many activations nested inside
  // X_A's single activity interval.
  EXPECT_GT(r.nesting_depth, 50u);
}

TEST(SpiralAdversary, ChainDriftIsOrderPsiSquared) {
  // Paper §7.2.3: total change of |X_j A| during flattening is O(psi^2)
  // (the bound proved there is 4 psi^2 per full flattening for the ideal
  // collapse order; we verify a modest constant multiple).
  const double psi = 0.30;
  const SpiralExperimentResult r = run_spiral_experiment(psi, 0.92);
  EXPECT_LE(r.max_chain_drift, 10.0 * psi * psi)
      << "drift " << r.max_chain_drift;
}

TEST(SpiralAdversary, SmallerPsiSmallerDrift) {
  const SpiralExperimentResult coarse = run_spiral_experiment(0.35, 0.92);
  const SpiralExperimentResult fine = run_spiral_experiment(0.25, 0.92);
  EXPECT_TRUE(coarse.visibility_broken);
  EXPECT_TRUE(fine.visibility_broken);
  EXPECT_LT(fine.max_chain_drift, coarse.max_chain_drift + 0.05);
  EXPECT_GT(fine.robot_count, coarse.robot_count);  // smaller psi => longer tail
}

TEST(SpiralAdversary, FinalConfigurationDisconnected) {
  const SpiralExperimentResult r = run_spiral_experiment(0.30, 0.92);
  // The broken A-B edge separates the configuration (A and C on one side).
  EXPECT_FALSE(r.finally_connected);
}

}  // namespace
}  // namespace cohesion::adversary
