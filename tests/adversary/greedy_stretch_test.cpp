#include "adversary/greedy_stretch.hpp"

#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/validators.hpp"
#include "core/visibility.hpp"
#include "metrics/configurations.hpp"

namespace cohesion::adversary {
namespace {

double worst_stretch_under_attack(const core::Algorithm& algo,
                                  const std::vector<geom::Vec2>& initial, std::size_t k,
                                  std::size_t steps, core::Trace* out_trace = nullptr) {
  GreedyStretchScheduler::Params p;
  p.k = k;
  p.visibility = 1.0;
  GreedyStretchScheduler sched(algo, initial, p);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;
  core::Engine engine(initial, algo, sched, cfg);
  engine.run(steps);
  double worst = 0.0;
  const auto& trace = engine.trace();
  for (double t = 0.0; t <= trace.end_time() + 1.0; t += 0.5) {
    worst = std::max(worst,
                     core::worst_initial_pair_stretch(initial, trace.configuration(t), 1.0));
  }
  if (out_trace) *out_trace = trace;
  return worst;
}

TEST(GreedyStretch, RespectsKAsyncBound) {
  const algo::KknpsAlgorithm algo({.k = 2});
  const auto initial = metrics::line_configuration(6, 0.9);
  core::Trace trace;
  worst_stretch_under_attack(algo, initial, 2, 600, &trace);
  EXPECT_TRUE(core::is_k_async(trace, 2))
      << "max nested = " << core::max_activations_within_interval(trace);
  EXPECT_GT(trace.records().size(), 500u);
}

TEST(GreedyStretch, CannotBreakKknpsWithMatchingScaling) {
  // Theorem 4 must hold against this adversary like any other.
  for (const std::size_t k : {1u, 3u}) {
    const algo::KknpsAlgorithm algo({.k = k});
    const auto initial = metrics::random_connected_configuration(8, 1.1, 1.0, 5 + k);
    const double worst = worst_stretch_under_attack(algo, initial, k, 1500);
    EXPECT_LE(worst, 1.0 + 1e-9) << "k = " << k;
  }
}

TEST(GreedyStretch, FairnessForcingActivatesEveryRobot) {
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::line_configuration(5, 0.9);
  GreedyStretchScheduler::Params p;
  p.k = 1;
  p.visibility = 1.0;
  p.fairness_every = 4;
  GreedyStretchScheduler sched(algo, initial, p);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;
  core::Engine engine(initial, algo, sched, cfg);
  engine.run(300);
  for (core::RobotId r = 0; r < initial.size(); ++r) {
    EXPECT_GT(engine.trace().activation_count(r), 0u) << "robot " << r << " never activated";
  }
}

TEST(GreedyStretch, FindsMoreStretchThanItConcedesToKknps) {
  // Sanity on adversarial strength: against Ando (no k-Async guarantee) the
  // greedy adversary extracts at least as much stretch as against KKNPS on
  // the same configuration.
  const auto initial = metrics::random_connected_configuration(8, 1.1, 1.0, 21);
  const algo::KknpsAlgorithm kknps({.k = 2});
  const algo::AndoAlgorithm ando(1.0);
  const double w_kknps = worst_stretch_under_attack(kknps, initial, 2, 1200);
  const double w_ando = worst_stretch_under_attack(ando, initial, 2, 1200);
  EXPECT_LE(w_kknps, 1.0 + 1e-9);
  EXPECT_GE(w_ando, w_kknps - 1e-9);
}

}  // namespace
}  // namespace cohesion::adversary
