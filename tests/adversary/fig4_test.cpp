#include "adversary/fig4.hpp"

#include <gtest/gtest.h>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/validators.hpp"
#include "sched/asynchronous.hpp"

namespace cohesion::adversary {
namespace {

TEST(Fig4Timeline, OneAsyncShape) {
  const auto acts = fig4_timeline(Fig4Variant::kOneAsync);
  ASSERT_EQ(acts.size(), 3u);
  // Sorted by look time, X twice, Y once.
  EXPECT_EQ(acts[0].robot, kFig4X);
  EXPECT_EQ(acts[1].robot, kFig4Y);
  EXPECT_EQ(acts[2].robot, kFig4X);
  EXPECT_LE(acts[0].t_look, acts[1].t_look);
  EXPECT_LE(acts[1].t_look, acts[2].t_look);
}

TEST(Fig4Timeline, TwoNestAShape) {
  const auto acts = fig4_timeline(Fig4Variant::kTwoNestA);
  ASSERT_EQ(acts.size(), 3u);
  // Both X intervals nested inside Y's.
  EXPECT_EQ(acts[0].robot, kFig4Y);
  for (int i = 1; i < 3; ++i) {
    EXPECT_GT(acts[i].t_look, acts[0].t_look);
    EXPECT_LT(acts[i].t_move_end, acts[0].t_move_end);
  }
}

class Fig4Search : public ::testing::TestWithParam<Fig4Variant> {};

TEST_P(Fig4Search, AndoSeparatesKknpsDoesNot) {
  const Fig4Result result = find_fig4_counterexample(GetParam(), 100000, 42);
  ASSERT_FALSE(result.initial.empty());
  // The headline claim of Fig. 4: unmodified Ando exceeds separation V...
  EXPECT_TRUE(result.ando_separates)
      << "best separation found: " << result.final_separation;
  // ...while KKNPS under the same adversarial timeline preserves visibility.
  EXPECT_FALSE(result.kknps_separates)
      << "KKNPS separation: " << result.kknps_separation;
  EXPECT_LE(result.kknps_separation, 1.0 + 1e-9);
  // And the timeline really is 1-Async / 2-NestA.
  EXPECT_TRUE(result.schedule_valid);
}

INSTANTIATE_TEST_SUITE_P(Variants, Fig4Search,
                         ::testing::Values(Fig4Variant::kOneAsync, Fig4Variant::kTwoNestA),
                         [](const auto& info) {
                           return info.param == Fig4Variant::kOneAsync ? "OneAsync" : "TwoNestA";
                         });

TEST(Fig4Search, DeterministicGivenSeed) {
  const Fig4Result a = find_fig4_counterexample(Fig4Variant::kOneAsync, 2000, 7);
  const Fig4Result b = find_fig4_counterexample(Fig4Variant::kOneAsync, 2000, 7);
  EXPECT_DOUBLE_EQ(a.final_separation, b.final_separation);
  EXPECT_EQ(a.trials_used, b.trials_used);
}

}  // namespace
}  // namespace cohesion::adversary
