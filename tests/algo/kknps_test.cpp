// Unit and property tests of the KKNPS destination rule (paper §3.2, §5).
#include "algo/kknps.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geometry/angles.hpp"
#include "geometry/safe_region.hpp"

namespace cohesion::algo {
namespace {

using core::Snapshot;
using geom::kPi;
using geom::unit;
using geom::Vec2;

Snapshot snap(std::initializer_list<Vec2> neighbours) {
  Snapshot s;
  for (const Vec2 p : neighbours) s.neighbours.push_back({p, false});
  return s;
}

TEST(Kknps, EmptySnapshotStaysPut) {
  const KknpsAlgorithm algo;
  EXPECT_EQ(algo.compute({}), (Vec2{0.0, 0.0}));
}

TEST(Kknps, InvalidParamsThrow) {
  EXPECT_THROW(KknpsAlgorithm({.k = 0}), std::invalid_argument);
  EXPECT_THROW(KknpsAlgorithm({.k = 1, .distance_delta = -0.1}), std::invalid_argument);
  EXPECT_THROW(KknpsAlgorithm({.k = 1, .radius_divisor = 2.0}), std::invalid_argument);
}

TEST(Kknps, SafeRadiusFormula) {
  const KknpsAlgorithm a({.k = 4});
  EXPECT_DOUBLE_EQ(a.safe_radius(1.0), 1.0 / 32.0);
  const KknpsAlgorithm b({.k = 2, .radius_divisor = 16.0});
  EXPECT_DOUBLE_EQ(b.safe_radius(1.0), 1.0 / 32.0);
}

TEST(Kknps, CustomRadiusDivisorScalesDestination) {
  const KknpsAlgorithm standard({.k = 1});
  const KknpsAlgorithm cautious({.k = 1, .radius_divisor = 16.0});
  const Snapshot s = snap({{0.8, 0.0}});
  EXPECT_NEAR(cautious.compute(s).norm(), standard.compute(s).norm() / 2.0, 1e-12);
}

TEST(Kknps, SingleNeighbourMovesToSafeRegionCenter) {
  const KknpsAlgorithm algo;
  const Vec2 n{0.8, 0.0};
  const Vec2 dest = algo.compute(snap({n}));
  // V_Y = 0.8; r = 0.1; centre of S^r at (0.1, 0).
  EXPECT_TRUE(geom::almost_equal(dest, {0.1, 0.0}, 1e-12));
}

TEST(Kknps, SingleNeighbourScalesWithK) {
  const KknpsAlgorithm algo4({.k = 4});
  const Vec2 dest = algo4.compute(snap({{0.8, 0.0}}));
  EXPECT_TRUE(geom::almost_equal(dest, {0.025, 0.0}, 1e-12));
}

TEST(Kknps, SurroundedRobotStaysPut) {
  // Three distant neighbours at 120 degrees: no open half-plane contains
  // them all; the safe-region intersection is the current location.
  const KknpsAlgorithm algo;
  const Snapshot s = snap({unit(0.0), unit(2.0 * kPi / 3.0), unit(4.0 * kPi / 3.0)});
  EXPECT_EQ(algo.compute(s), (Vec2{0.0, 0.0}));
}

TEST(Kknps, AntipodalNeighboursStayPut) {
  // Gap exactly pi: contained in a closed half-plane only; tangent safe
  // disks intersect at Y alone.
  const KknpsAlgorithm algo;
  EXPECT_EQ(algo.compute(snap({{1.0, 0.0}, {-1.0, 0.0}})), (Vec2{0.0, 0.0}));
}

TEST(Kknps, TwoNeighboursMoveToMidpointOfCenters) {
  const KknpsAlgorithm algo;
  // Neighbours at +-45 degrees, distance 1: V_Y = 1, r = 1/8.
  const Snapshot s = snap({unit(kPi / 4.0), unit(-kPi / 4.0)});
  const Vec2 dest = algo.compute(s);
  const Vec2 expect = geom::midpoint(unit(kPi / 4.0) * 0.125, unit(-kPi / 4.0) * 0.125);
  EXPECT_TRUE(geom::almost_equal(dest, expect, 1e-12));
  // Symmetric pair: destination on the bisector (+x axis).
  EXPECT_NEAR(dest.y, 0.0, 1e-12);
  EXPECT_GT(dest.x, 0.0);
}

TEST(Kknps, CloseNeighboursDoNotAffectDestination) {
  const KknpsAlgorithm algo;
  const Snapshot without = snap({unit(0.3), unit(-0.2)});
  Snapshot with = without;
  with.neighbours.push_back({unit(1.2) * 0.3, false});  // close: 0.3 <= V_Y/2
  EXPECT_TRUE(geom::almost_equal(algo.compute(without), algo.compute(with), 1e-12));
}

TEST(Kknps, ExtremePairSelection) {
  // Neighbours at angles {0, 0.2, 0.9}: the extreme pair is {0, 0.9}.
  const KknpsAlgorithm algo;
  const Snapshot s = snap({unit(0.0), unit(0.2), unit(0.9)});
  const Vec2 dest = algo.compute(s);
  const double r = 0.125;
  const Vec2 expect = geom::midpoint(unit(0.0) * r, unit(0.9) * r);
  EXPECT_TRUE(geom::almost_equal(dest, expect, 1e-12));
}

TEST(Kknps, ErrorToleranceShrinksWorkingRange) {
  const KknpsAlgorithm exact({.k = 1});
  const KknpsAlgorithm tolerant({.k = 1, .distance_delta = 0.25});
  const Snapshot s = snap({{1.0, 0.0}});
  // V_Y shrinks by 1/(1+delta) => safe radius shrinks by the same factor.
  const Vec2 d0 = exact.compute(s);
  const Vec2 d1 = tolerant.compute(s);
  EXPECT_NEAR(d1.norm(), d0.norm() / 1.25, 1e-12);
}

TEST(Kknps, HalfplaneBoundarySensitivity) {
  const KknpsAlgorithm algo;
  // Slightly less than antipodal: gap just over pi => must move.
  const Vec2 dest = algo.compute(snap({unit(0.0), unit(kPi - 0.01)}));
  EXPECT_GT(dest.norm(), 0.0);
  // Add a third neighbour closing the half-plane: must stay.
  const Vec2 stay = algo.compute(snap({unit(0.0), unit(kPi - 0.01), unit(-kPi / 2.0)}));
  EXPECT_EQ(stay, (Vec2{0.0, 0.0}));
}

struct KParam {
  std::size_t k;
};

class KknpsProperty : public ::testing::TestWithParam<KParam> {};

TEST_P(KknpsProperty, MoveNeverExceedsVOver8) {
  const KknpsAlgorithm algo({.k = GetParam().k});
  std::mt19937_64 rng(500 + GetParam().k);
  std::uniform_real_distribution<double> ang(-kPi, kPi), rad(0.01, 1.0);
  std::uniform_int_distribution<int> count(1, 12);
  for (int trial = 0; trial < 2000; ++trial) {
    Snapshot s;
    for (int i = 0, n = count(rng); i < n; ++i) {
      s.neighbours.push_back({unit(ang(rng)) * rad(rng), false});
    }
    const double v_y = s.furthest_distance();
    EXPECT_LE(algo.compute(s).norm(), v_y / 8.0 + 1e-12);
  }
}

TEST_P(KknpsProperty, DestinationRespectsAllDistantSafeRegions) {
  const std::size_t k = GetParam().k;
  const KknpsAlgorithm algo({.k = k});
  std::mt19937_64 rng(900 + k);
  std::uniform_real_distribution<double> ang(-kPi, kPi), rad(0.05, 1.0);
  std::uniform_int_distribution<int> count(1, 10);
  for (int trial = 0; trial < 2000; ++trial) {
    Snapshot s;
    for (int i = 0, n = count(rng); i < n; ++i) {
      s.neighbours.push_back({unit(ang(rng)) * rad(rng), false});
    }
    const Vec2 dest = algo.compute(s);
    const double v_y = s.furthest_distance();
    const double r = v_y / (8.0 * static_cast<double>(k));
    for (const auto& o : s.neighbours) {
      if (o.position.norm() > v_y / 2.0) {
        const geom::Circle safe = geom::kknps_safe_region({0.0, 0.0}, o.position, r);
        EXPECT_TRUE(safe.contains(dest, 1e-9))
            << "trial " << trial << ": destination escapes a distant safe region";
      }
    }
  }
}

TEST_P(KknpsProperty, ScaleEquivalence) {
  // dest_k == dest_1 / k for the same snapshot (§3.2: "simply scale the
  // motion function by 1/k").
  const std::size_t k = GetParam().k;
  const KknpsAlgorithm algo1({.k = 1});
  const KknpsAlgorithm algok({.k = k});
  std::mt19937_64 rng(1300 + k);
  std::uniform_real_distribution<double> ang(-kPi, kPi), rad(0.05, 1.0);
  for (int trial = 0; trial < 500; ++trial) {
    Snapshot s;
    for (int i = 0; i < 5; ++i) s.neighbours.push_back({unit(ang(rng)) * rad(rng), false});
    const Vec2 d1 = algo1.compute(s);
    const Vec2 dk = algok.compute(s);
    EXPECT_TRUE(geom::almost_equal(dk, d1 / static_cast<double>(k), 1e-12));
  }
}

TEST_P(KknpsProperty, RotationEquivariance) {
  // The rule is purely geometric: rotating the snapshot rotates the
  // destination (the algorithm works in arbitrary local frames).
  const KknpsAlgorithm algo({.k = GetParam().k});
  std::mt19937_64 rng(1700 + GetParam().k);
  std::uniform_real_distribution<double> ang(-kPi, kPi), rad(0.05, 1.0);
  for (int trial = 0; trial < 500; ++trial) {
    Snapshot s;
    for (int i = 0; i < 4; ++i) s.neighbours.push_back({unit(ang(rng)) * rad(rng), false});
    const double theta = ang(rng);
    Snapshot rotated;
    for (const auto& o : s.neighbours) rotated.neighbours.push_back({o.position.rotated(theta), false});
    EXPECT_TRUE(
        geom::almost_equal(algo.compute(rotated), algo.compute(s).rotated(theta), 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KknpsProperty,
                         ::testing::Values(KParam{1}, KParam{2}, KParam{4}, KParam{8}),
                         [](const auto& info) { return "k" + std::to_string(info.param.k); });

}  // namespace
}  // namespace cohesion::algo
