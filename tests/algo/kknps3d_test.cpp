// Tests for the 3D generalization (paper §6.3.2).
#include "algo/kknps3d.hpp"

#include <gtest/gtest.h>

#include <random>

namespace cohesion::algo {
namespace {

using geom::Vec3;

TEST(MinNormPoint, SinglePoint) {
  const Vec3 m = min_norm_point_in_hull({{1.0, 2.0, 2.0}});
  EXPECT_TRUE(geom::almost_equal(m, {1.0, 2.0, 2.0}));
}

TEST(MinNormPoint, SegmentThroughOrigin) {
  const Vec3 m = min_norm_point_in_hull({{-1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}});
  EXPECT_NEAR(m.norm(), 0.0, 1e-6);
}

TEST(MinNormPoint, SegmentOffset) {
  // Hull = segment from (1,-1,0) to (1,1,0); min-norm point is (1,0,0).
  const Vec3 m = min_norm_point_in_hull({{1.0, -1.0, 0.0}, {1.0, 1.0, 0.0}});
  EXPECT_TRUE(geom::almost_equal(m, {1.0, 0.0, 0.0}, 1e-6));
}

TEST(MinNormPoint, TetrahedronContainingOrigin) {
  const Vec3 m = min_norm_point_in_hull(
      {{1.0, 1.0, 1.0}, {1.0, -1.0, -1.0}, {-1.0, 1.0, -1.0}, {-1.0, -1.0, 1.0}});
  EXPECT_NEAR(m.norm(), 0.0, 1e-5);
}

TEST(MinNormPoint, OptimalityCondition) {
  // For the min-norm point m: m . p >= |m|^2 for every hull generator p.
  // Frank-Wolfe converges at O(1/t), so allow a small absolute slack; the
  // destination rule is insensitive to this because near-zero witnesses are
  // rejected by the chord test (t <= 0) rather than by |m| itself.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Vec3> pts;
    for (int i = 0; i < 6; ++i) pts.push_back({u(rng) + 0.5, u(rng), u(rng)});
    const Vec3 m = min_norm_point_in_hull(pts, 8192);
    for (const Vec3& p : pts) EXPECT_GE(m.dot(p), m.norm2() - 2e-3);
  }
}

TEST(Kknps3d, EmptyStays) {
  EXPECT_TRUE(geom::almost_equal(kknps3d_destination({}), {0.0, 0.0, 0.0}));
}

TEST(Kknps3d, SingleNeighbourMovesTowardIt) {
  const Vec3 d = kknps3d_destination({{0.8, 0.0, 0.0}});
  EXPECT_GT(d.x, 0.0);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
  EXPECT_NEAR(d.z, 0.0, 1e-12);
  EXPECT_LE(d.norm(), 0.8 / 8.0 + 1e-12);
}

TEST(Kknps3d, SurroundedStaysPut) {
  // Distant neighbours at the vertices of a regular tetrahedron.
  const std::vector<Vec3> n{{1.0, 1.0, 1.0}, {1.0, -1.0, -1.0}, {-1.0, 1.0, -1.0},
                            {-1.0, -1.0, 1.0}};
  EXPECT_TRUE(geom::almost_equal(kknps3d_destination(n), {0.0, 0.0, 0.0}, 1e-6));
}

TEST(Kknps3d, DestinationInsideEverySafeBall) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> rad(0.05, 1.0);
  for (const std::size_t k : {1u, 2u, 4u}) {
    for (int trial = 0; trial < 1000; ++trial) {
      std::vector<Vec3> neighbours;
      const int m = 1 + static_cast<int>(rng() % 8);
      for (int i = 0; i < m; ++i) {
        Vec3 dir{u(rng), u(rng), u(rng)};
        if (dir.norm() < 1e-3) dir = {1.0, 0.0, 0.0};
        neighbours.push_back(dir.normalized() * rad(rng));
      }
      const Vec3 dest = kknps3d_destination(neighbours, {.k = k});
      double v_y = 0.0;
      for (const Vec3& p : neighbours) v_y = std::max(v_y, p.norm());
      const double r = v_y / (8.0 * static_cast<double>(k));
      EXPECT_LE(dest.norm(), r + 1e-9);  // planar V/8 cap, scaled
      for (const Vec3& p : neighbours) {
        if (p.norm() > v_y / 2.0) {
          const Vec3 center = p.normalized() * r;
          EXPECT_LE(dest.distance_to(center), r + 1e-9);
        }
      }
    }
  }
}

TEST(Kknps3d, ConvergesOnCube) {
  // Eight robots on a cube with edges within visibility range.
  std::vector<Vec3> cube;
  for (int i = 0; i < 8; ++i) {
    cube.push_back({0.5 * (i & 1), 0.5 * ((i >> 1) & 1), 0.5 * ((i >> 2) & 1)});
  }
  const auto r = simulate_kknps3d(cube, 1.0, 1, 3000);
  EXPECT_LE(r.final_diameter, 0.02);
  EXPECT_LE(r.worst_initial_stretch, 1.0 + 1e-9);
}

TEST(Kknps3d, ConvergesOnRandomCloudSSync) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> u(-0.6, 0.6);
  std::vector<Vec3> cloud;
  for (int i = 0; i < 16; ++i) cloud.push_back({u(rng), u(rng), u(rng)});
  const auto r = simulate_kknps3d(cloud, 1.0, 2, 8000, /*ssync=*/true, /*seed=*/5);
  EXPECT_LE(r.final_diameter, 0.05);
  EXPECT_LE(r.worst_initial_stretch, 1.0 + 1e-9);
}

class Kknps3dSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Kknps3dSweep, ConvergesAndStaysCohesiveAcrossK) {
  const std::size_t k = GetParam();
  std::mt19937_64 rng(40 + k);
  std::uniform_real_distribution<double> u(-0.5, 0.5);
  std::vector<Vec3> cloud;
  for (int i = 0; i < 12; ++i) cloud.push_back({u(rng), u(rng), u(rng)});
  const auto r = simulate_kknps3d(cloud, 1.0, k, 4000 * k, /*ssync=*/true, /*seed=*/k);
  EXPECT_LE(r.final_diameter, 0.05) << "k=" << k;
  EXPECT_LE(r.worst_initial_stretch, 1.0 + 1e-9) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Kknps3dSweep, ::testing::Values(1, 2, 4),
                         [](const auto& info) { return "k" + std::to_string(info.param); });

TEST(Kknps3d, ChainCohesion) {
  // A 3D chain at near-threshold spacing: cohesion is the hard part.
  std::vector<Vec3> chain;
  for (int i = 0; i < 8; ++i) {
    chain.push_back({0.9 * i, 0.1 * (i % 2), 0.05 * (i % 3)});
  }
  const auto r = simulate_kknps3d(chain, 1.0, 1, 6000);
  EXPECT_LE(r.worst_initial_stretch, 1.0 + 1e-9);
  EXPECT_LE(r.final_diameter, 0.1);
}

}  // namespace
}  // namespace cohesion::algo
