#include "algo/baselines.hpp"

#include <gtest/gtest.h>

#include <random>

#include "algo/lens_midpoint.hpp"
#include "geometry/angles.hpp"
#include "geometry/safe_region.hpp"
#include "geometry/smallest_enclosing_circle.hpp"

namespace cohesion::algo {
namespace {

using core::Snapshot;
using geom::kPi;
using geom::unit;
using geom::Vec2;

Snapshot snap(std::initializer_list<Vec2> neighbours) {
  Snapshot s;
  for (const Vec2 p : neighbours) s.neighbours.push_back({p, false});
  return s;
}

Snapshot random_snapshot(std::mt19937_64& rng, int max_n, double max_r) {
  std::uniform_real_distribution<double> ang(-kPi, kPi), rad(0.05, max_r);
  std::uniform_int_distribution<int> count(1, max_n);
  Snapshot s;
  for (int i = 0, n = count(rng); i < n; ++i) {
    s.neighbours.push_back({unit(ang(rng)) * rad(rng), false});
  }
  return s;
}

// ---------- Ando ----------

TEST(Ando, EmptyStaysPut) {
  const AndoAlgorithm algo(1.0);
  EXPECT_EQ(algo.compute({}), (Vec2{0.0, 0.0}));
}

TEST(Ando, PairMovesToMidpoint) {
  // SEC centre of {self, neighbour} is the midpoint; safe disk allows it.
  const AndoAlgorithm algo(1.0);
  const Vec2 dest = algo.compute(snap({{0.8, 0.0}}));
  EXPECT_TRUE(geom::almost_equal(dest, {0.4, 0.0}, 1e-9));
}

TEST(Ando, RespectsAllSafeDisks) {
  const double v = 1.0;
  const AndoAlgorithm algo(v);
  std::mt19937_64 rng(61);
  for (int trial = 0; trial < 2000; ++trial) {
    const Snapshot s = random_snapshot(rng, 8, v);
    const Vec2 dest = algo.compute(s);
    for (const auto& o : s.neighbours) {
      const geom::Circle disk = geom::ando_safe_region({0.0, 0.0}, o.position, v);
      EXPECT_TRUE(disk.contains(dest, 1e-7));
    }
  }
}

TEST(Ando, MovesTowardSecCenter) {
  const AndoAlgorithm algo(1.0);
  std::mt19937_64 rng(62);
  for (int trial = 0; trial < 500; ++trial) {
    const Snapshot s = random_snapshot(rng, 6, 1.0);
    const Vec2 dest = algo.compute(s);
    if (dest.norm() < 1e-12) continue;
    std::vector<Vec2> pts{{0.0, 0.0}};
    for (const auto& o : s.neighbours) pts.push_back(o.position);
    const Vec2 goal = geom::smallest_enclosing_circle(pts).center;
    // Destination is on the ray to the SEC centre.
    EXPECT_NEAR(dest.normalized().dot(goal.normalized()), 1.0, 1e-9);
    EXPECT_LE(dest.norm(), goal.norm() + 1e-9);
  }
}

TEST(Ando, UnknownVFallsBackToFurthest) {
  const AndoAlgorithm algo(0.0);  // v <= 0 => use furthest neighbour
  const Vec2 dest = algo.compute(snap({{0.5, 0.0}}));
  EXPECT_GT(dest.norm(), 0.0);
}

// ---------- Katreniak ----------

TEST(Katreniak, EmptyStaysPut) {
  const KatreniakAlgorithm algo;
  EXPECT_EQ(algo.compute({}), (Vec2{0.0, 0.0}));
}

TEST(Katreniak, DestinationInsideEveryRegion) {
  const KatreniakAlgorithm algo;
  std::mt19937_64 rng(63);
  for (int trial = 0; trial < 2000; ++trial) {
    const Snapshot s = random_snapshot(rng, 8, 1.0);
    const double v_z = s.furthest_distance();
    const Vec2 dest = algo.compute(s);
    for (const auto& o : s.neighbours) {
      const auto region = geom::katreniak_safe_region({0.0, 0.0}, o.position, v_z);
      EXPECT_TRUE(region.contains(dest, 1e-6))
          << "trial " << trial << " dest " << dest.x << "," << dest.y;
    }
  }
}

TEST(Katreniak, SymmetricPairConverges) {
  // Two robots at distance d see each other; each may move toward the
  // midpoint but at most d/4 + 0 (near disk reaches to the midpoint of
  // [Y, X] only at d/2): destination stays strictly between.
  const KatreniakAlgorithm algo;
  const Vec2 dest = algo.compute(snap({{1.0, 0.0}}));
  EXPECT_GT(dest.x, 0.0);
  EXPECT_LE(dest.x, 0.5 + 1e-9);
}

// ---------- CoG / GCM ----------

TEST(Cog, MovesToCentroid) {
  const CogAlgorithm algo;
  const Vec2 dest = algo.compute(snap({{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}}));
  EXPECT_TRUE(geom::almost_equal(dest, {0.0, 0.0}, 1e-12));
  const Vec2 dest2 = algo.compute(snap({{1.0, 1.0}}));
  EXPECT_TRUE(geom::almost_equal(dest2, {0.5, 0.5}, 1e-12));
}

TEST(Cog, CentroidIncludesSelf) {
  const CogAlgorithm algo;
  const Vec2 dest = algo.compute(snap({{3.0, 0.0}, {0.0, 3.0}}));
  EXPECT_TRUE(geom::almost_equal(dest, {1.0, 1.0}, 1e-12));
}

TEST(Gcm, MovesToMinboxCenter) {
  const GcmAlgorithm algo;
  const Vec2 dest = algo.compute(snap({{2.0, 0.0}, {0.0, 4.0}}));
  EXPECT_TRUE(geom::almost_equal(dest, {1.0, 2.0}, 1e-12));
}

TEST(Gcm, EmptyStaysPut) {
  const GcmAlgorithm algo;
  EXPECT_EQ(algo.compute({}), (Vec2{0.0, 0.0}));
}

TEST(Null, NeverMoves) {
  const NullAlgorithm algo;
  EXPECT_EQ(algo.compute(snap({{1.0, 0.0}})), (Vec2{0.0, 0.0}));
}

// ---------- LensMidpoint (the Section-7 victim) ----------

TEST(LensMidpoint, MovesToProjectionOnChord) {
  const LensMidpointAlgorithm algo;
  // Neighbours symmetric about the y-axis, both one unit away, forming an
  // interior angle < pi: projection lands on the chord.
  const Vec2 p = unit(kPi / 2.0 + 0.3), r = unit(kPi / 2.0 - 0.3);
  const Vec2 dest = algo.compute(snap({p, r}));
  EXPECT_NEAR(dest.x, 0.0, 1e-12);
  EXPECT_NEAR(dest.y, std::cos(0.3), 1e-9);
  // Stays in the lens: within distance 1 of both neighbours.
  EXPECT_LE(dest.distance_to(p), 1.0 + 1e-9);
  EXPECT_LE(dest.distance_to(r), 1.0 + 1e-9);
}

TEST(LensMidpoint, EssentiallyColinearStaysPut) {
  const LensMidpointAlgorithm algo({.colinearity_tolerance = 1e-3});
  const Vec2 dest = algo.compute(snap({{-1.0, 0.0}, {1.0, 1e-5}}));
  EXPECT_EQ(dest, (Vec2{0.0, 0.0}));
}

TEST(LensMidpoint, WrongNeighbourCountStaysPut) {
  const LensMidpointAlgorithm algo;
  EXPECT_EQ(algo.compute(snap({{1.0, 0.0}})), (Vec2{0.0, 0.0}));
  EXPECT_EQ(algo.compute(snap({{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}})), (Vec2{0.0, 0.0}));
}

TEST(LensMidpoint, MoveReducesDeviationFromColinearity) {
  const LensMidpointAlgorithm algo({.colinearity_tolerance = 1e-9});
  std::mt19937_64 rng(64);
  std::uniform_real_distribution<double> ang(0.1, kPi - 0.1);
  for (int trial = 0; trial < 300; ++trial) {
    const double half = ang(rng) / 2.0;
    const Vec2 p = unit(kPi / 2.0 + half), r = unit(kPi / 2.0 - half);
    const Vec2 dest = algo.compute(snap({p, r}));
    const double before = kPi - geom::interior_angle(p, {0.0, 0.0}, r);
    const double after = kPi - geom::interior_angle(p, dest, r);
    EXPECT_LT(after, before + 1e-9);
    EXPECT_NEAR(after, 0.0, 1e-9);  // projection achieves co-linearity
  }
}

}  // namespace
}  // namespace cohesion::algo
