// Certification of the generative schedulers against the trace validators:
// the schedulers must produce exactly the scheduling models they claim.
#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "core/engine.hpp"
#include "core/validators.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion::sched {
namespace {

using core::Engine;
using core::EngineConfig;
using core::Trace;

EngineConfig exact_config() {
  EngineConfig c;
  c.visibility.radius = 1.0;
  c.error.random_rotation = false;
  return c;
}

Trace run_with(core::Scheduler& sched, std::size_t n, std::size_t steps) {
  const algo::NullAlgorithm null;
  const auto initial = metrics::line_configuration(n, 0.5);
  Engine engine(initial, null, sched, exact_config());
  engine.run(steps);
  return engine.trace();
}

TEST(FSync, EveryRobotEveryRound) {
  FSyncScheduler sched(4);
  const Trace t = run_with(sched, 4, 40);
  for (core::RobotId r = 0; r < 4; ++r) EXPECT_EQ(t.activation_count(r), 10u);
  EXPECT_TRUE(core::is_ssync(t));
  EXPECT_TRUE(core::is_fair(t, 1.5));
}

TEST(FSync, RoundsAlign) {
  FSyncScheduler sched(3);
  const Trace t = run_with(sched, 3, 9);
  for (const auto& rec : t.records()) {
    EXPECT_DOUBLE_EQ(rec.start(), std::floor(rec.start()));
  }
}

TEST(SSync, IsSsyncShapedAndFair) {
  SSyncScheduler::Params p;
  p.activation_probability = 0.4;
  p.fairness_window = 5;
  SSyncScheduler sched(6, p);
  const Trace t = run_with(sched, 6, 300);
  EXPECT_TRUE(core::is_ssync(t));
  EXPECT_TRUE(core::is_fair(t, static_cast<double>(p.fairness_window) + 1.0));
  // Not FSync: some round should miss some robot.
  std::size_t total = 0;
  for (core::RobotId r = 0; r < 6; ++r) total += t.activation_count(r);
  EXPECT_EQ(total, 300u);
}

TEST(SSync, AllSubsetSchedulesAreAlsoOneAsync) {
  // SSync executions are a special case of every async model.
  SSyncScheduler sched(5);
  const Trace t = run_with(sched, 5, 200);
  EXPECT_TRUE(core::is_nested_activation(t));
}

class KAsyncValidation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KAsyncValidation, TraceSatisfiesK) {
  const std::size_t k = GetParam();
  KAsyncScheduler::Params p;
  p.k = k;
  p.seed = 17 + k;
  KAsyncScheduler sched(6, p);
  const Trace t = run_with(sched, 6, 600);
  EXPECT_TRUE(core::is_k_async(t, k)) << "max nested = "
                                      << core::max_activations_within_interval(t);
  EXPECT_TRUE(core::is_fair(t, 20.0));
}

TEST_P(KAsyncValidation, ActuallyExercisesAsynchrony) {
  const std::size_t k = GetParam();
  KAsyncScheduler::Params p;
  p.k = k;
  p.min_duration = 1.0;
  p.max_duration = 4.0;
  p.seed = 23 + k;
  KAsyncScheduler sched(6, p);
  const Trace t = run_with(sched, 6, 600);
  // The schedule should not be degenerate-synchronous: overlapping intervals
  // must occur (k >= 1 of them).
  EXPECT_GE(core::max_activations_within_interval(t), 1u);
}

TEST_P(KAsyncValidation, HeapSelectionSatisfiesKAndFairness) {
  // Heap selection follows a different seeded stream (O(1) RNG draws per
  // proposal instead of n tie-jitters) but must generate equally valid
  // k-async schedules: the k-bound, fairness and genuine interval overlap
  // all certify against the same validators.
  const std::size_t k = GetParam();
  KAsyncScheduler::Params p;
  p.k = k;
  p.seed = 29 + k;
  p.heap_selection = true;
  KAsyncScheduler sched(6, p);
  const Trace t = run_with(sched, 6, 600);
  EXPECT_TRUE(core::is_k_async(t, k)) << "max nested = "
                                      << core::max_activations_within_interval(t);
  EXPECT_TRUE(core::is_fair(t, 20.0));
  EXPECT_GE(core::max_activations_within_interval(t), 1u);
}

TEST(KAsync, HeapSelectionIsDeterministicPerSeed) {
  KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 77;
  p.heap_selection = true;
  KAsyncScheduler a(5, p);
  KAsyncScheduler b(5, p);
  const Trace ta = run_with(a, 5, 200);
  const Trace tb = run_with(b, 5, 200);
  ASSERT_EQ(ta.records().size(), tb.records().size());
  for (std::size_t i = 0; i < ta.records().size(); ++i) {
    EXPECT_EQ(ta.records()[i].activation.robot, tb.records()[i].activation.robot);
    EXPECT_EQ(ta.records()[i].activation.t_look, tb.records()[i].activation.t_look);
    EXPECT_EQ(ta.records()[i].activation.t_move_end, tb.records()[i].activation.t_move_end);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KAsyncValidation, ::testing::Values(1, 2, 3, 5, 8));

class KNestAValidation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KNestAValidation, TraceIsNestedWithDepthK) {
  const std::size_t k = GetParam();
  KNestAScheduler::Params p;
  p.k = k;
  p.seed = 31 + k;
  KNestAScheduler sched(7, p);
  const Trace t = run_with(sched, 7, 700);
  EXPECT_TRUE(core::is_nested_activation(t));
  EXPECT_TRUE(core::is_k_nesta(t, k));
  // Depth actually reached (pairs exist in a 7-robot round).
  EXPECT_EQ(core::max_activations_within_interval(t), k);
  EXPECT_TRUE(core::is_fair(t, 3.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KNestAValidation, ::testing::Values(1, 2, 3, 6));

TEST(SSync, FairnessWindowOneIsFullySynchronous) {
  // With a 1-round fairness window every robot is forced every round: the
  // schedule degenerates to FSync regardless of the activation probability.
  SSyncScheduler::Params p;
  p.activation_probability = 0.0;
  p.fairness_window = 1;
  SSyncScheduler sched(4, p);
  const Trace t = run_with(sched, 4, 40);
  for (core::RobotId r = 0; r < 4; ++r) EXPECT_EQ(t.activation_count(r), 10u);
}

TEST(KNestA, SingleRobotDegeneratesGracefully) {
  KNestAScheduler sched(1);
  const Trace t = run_with(sched, 1, 10);
  EXPECT_EQ(t.activation_count(0), 10u);
  EXPECT_TRUE(core::is_fair(t, 2.0));
}

TEST(Scripted, ReplaysAndEnds) {
  std::vector<core::Activation> script{
      {0, 0.0, 0.1, 0.5, 1.0},
      {1, 0.2, 0.3, 0.7, 1.0},
  };
  ScriptedScheduler sched(script);
  const Trace t = run_with(sched, 2, 100);
  EXPECT_EQ(t.records().size(), 2u);
}

TEST(Scripted, RejectsUnsortedScript) {
  std::vector<core::Activation> script{
      {0, 1.0, 1.1, 1.5, 1.0},
      {1, 0.0, 0.3, 0.7, 1.0},
  };
  EXPECT_THROW(ScriptedScheduler{script}, std::invalid_argument);
}

TEST(Schedulers, ZeroRobotsThrow) {
  EXPECT_THROW(KAsyncScheduler(0), std::invalid_argument);
  EXPECT_THROW(KNestAScheduler(0), std::invalid_argument);
}

TEST(Schedulers, KZeroThrows) {
  KAsyncScheduler::Params pa;
  pa.k = 0;
  EXPECT_THROW(KAsyncScheduler(3, pa), std::invalid_argument);
  KNestAScheduler::Params pn;
  pn.k = 0;
  EXPECT_THROW(KNestAScheduler(3, pn), std::invalid_argument);
}

TEST(KAsync, UnboundedModeAllowsDeepNesting) {
  KAsyncScheduler::Params p;
  p.k = static_cast<std::size_t>(-1);  // Async
  p.min_duration = 0.2;  // short inner intervals can nest many times...
  p.max_duration = 12.0;  // ...inside long outer ones
  p.min_gap = 0.01;
  p.max_gap = 0.05;
  p.seed = 99;
  KAsyncScheduler sched(4, p);
  const Trace t = run_with(sched, 4, 800);
  // With long intervals and short gaps, nesting depth should exceed any
  // small k — demonstrating genuinely unbounded asynchrony.
  EXPECT_GT(core::max_activations_within_interval(t), 3u);
}

TEST(KAsync, XiRigidFractions) {
  KAsyncScheduler::Params p;
  p.xi = 0.5;
  p.seed = 7;
  KAsyncScheduler sched(3, p);
  const algo::NullAlgorithm null;
  Engine engine(metrics::line_configuration(3, 0.5), null, sched, exact_config());
  engine.run(100);
  for (const auto& rec : engine.trace().records()) {
    EXPECT_GE(rec.activation.realized_fraction, 0.5);
    EXPECT_LE(rec.activation.realized_fraction, 1.0);
  }
}

}  // namespace
}  // namespace cohesion::sched
