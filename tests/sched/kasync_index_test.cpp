// The indexed open-interval bookkeeping (own-look rings + start-sorted
// interval list with prefix-max ends) must reproduce the legacy flat scan
// bit-for-bit: both paths draw RNG identically and resolve the same
// postponement fixed point, so entire schedules — and hence entire engine
// traces — must match.
#include <gtest/gtest.h>

#include "core/validators.hpp"
#include "sched/asynchronous.hpp"

namespace cohesion::sched {
namespace {

using core::Activation;

struct InertView final : core::SimulationView {
  std::size_t n = 0;
  core::Time front = 0.0;
  [[nodiscard]] std::size_t robot_count() const override { return n; }
  [[nodiscard]] core::Time busy_until(core::RobotId) const override { return 0.0; }
  [[nodiscard]] core::Time frontier() const override { return front; }
  [[nodiscard]] geom::Vec2 position(core::RobotId, core::Time) const override { return {}; }
  [[nodiscard]] std::size_t activations_of(core::RobotId) const override { return 0; }
};

std::vector<Activation> schedule_of(std::size_t n, std::size_t k, std::uint64_t seed,
                                    bool indexed, std::size_t steps) {
  KAsyncScheduler::Params p;
  p.k = k;
  p.seed = seed;
  p.indexed_intervals = indexed;
  KAsyncScheduler sched(n, p);
  InertView view;
  view.n = n;
  std::vector<Activation> out;
  out.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const auto a = sched.next(view);
    out.push_back(*a);
    view.front = a->t_look;  // the engine's frontier is the last look time
  }
  return out;
}

class KAsyncIndexEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(KAsyncIndexEquivalence, SchedulesAreBitIdentical) {
  const auto [n, k, seed] = GetParam();
  const auto indexed = schedule_of(n, k, seed, true, 2000);
  const auto legacy = schedule_of(n, k, seed, false, 2000);
  ASSERT_EQ(indexed.size(), legacy.size());
  for (std::size_t i = 0; i < indexed.size(); ++i) {
    ASSERT_EQ(indexed[i].robot, legacy[i].robot) << "step " << i;
    ASSERT_EQ(indexed[i].t_look, legacy[i].t_look) << "step " << i;
    ASSERT_EQ(indexed[i].t_move_start, legacy[i].t_move_start) << "step " << i;
    ASSERT_EQ(indexed[i].t_move_end, legacy[i].t_move_end) << "step " << i;
    ASSERT_EQ(indexed[i].realized_fraction, legacy[i].realized_fraction) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KAsyncIndexEquivalence,
    ::testing::Values(std::tuple<std::size_t, std::size_t, std::uint64_t>{3, 1, 11},
                      std::tuple<std::size_t, std::size_t, std::uint64_t>{6, 2, 17},
                      std::tuple<std::size_t, std::size_t, std::uint64_t>{16, 3, 23},
                      std::tuple<std::size_t, std::size_t, std::uint64_t>{16, 8, 29},
                      std::tuple<std::size_t, std::size_t, std::uint64_t>{64, 2, 31},
                      // unrestricted Async: postponement disabled, pruning only
                      std::tuple<std::size_t, std::size_t, std::uint64_t>{16, SIZE_MAX, 37}));

TEST(KAsyncIndex, UnrestrictedAsyncSkipsBookkeepingButStaysSane) {
  // With k = SIZE_MAX the k-bound can never bind, so the indexed path
  // tracks nothing at all; the schedule must still be a valid
  // non-decreasing-look Async schedule identical to the legacy one (covered
  // by the parameterized sweep above) over a long run.
  const auto sched = schedule_of(128, SIZE_MAX, 41, true, 20000);
  for (std::size_t i = 1; i < sched.size(); ++i) {
    ASSERT_GE(sched[i].t_look, sched[i - 1].t_look);
  }
}

}  // namespace
}  // namespace cohesion::sched
