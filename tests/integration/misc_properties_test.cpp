// Cross-cutting properties that don't belong to a single module:
// degenerate swarms, large-swarm smoke, hull-diminishing for the baselines
// inside their guaranteed regimes, and round-accounting sanity.
#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "geometry/convex_hull.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion {
namespace {

using core::Engine;
using core::EngineConfig;
using geom::Vec2;

EngineConfig exact() {
  EngineConfig c;
  c.visibility.radius = 1.0;
  c.error.random_rotation = false;
  return c;
}

TEST(Degenerate, SingleRobotIsTriviallyConverged) {
  const algo::KknpsAlgorithm algo;
  sched::FSyncScheduler sched(1);
  Engine engine({{2.0, 3.0}}, algo, sched, exact());
  engine.run(50);
  EXPECT_TRUE(geom::almost_equal(engine.current_configuration()[0], {2.0, 3.0}));
  EXPECT_DOUBLE_EQ(engine.current_diameter(), 0.0);
}

TEST(Degenerate, TwoRobotsGatherToMutualMidpointRegion) {
  const algo::KknpsAlgorithm algo;
  sched::FSyncScheduler sched(2);
  Engine engine({{0.0, 0.0}, {0.9, 0.0}}, algo, sched, exact());
  EXPECT_TRUE(engine.run_until_converged(0.01, 100000));
  const auto cfg = engine.current_configuration();
  // Convergence point lies between the two initial positions (hull nesting).
  for (const Vec2 p : cfg) {
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, 0.9 + 1e-9);
    EXPECT_NEAR(p.y, 0.0, 1e-9);
  }
}

TEST(Degenerate, AllRobotsCoLocatedStayPut) {
  const algo::KknpsAlgorithm algo;
  sched::SSyncScheduler sched(4);
  Engine engine({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}}, algo, sched, exact());
  engine.run(100);
  EXPECT_DOUBLE_EQ(engine.current_diameter(), 0.0);
}

TEST(LargeSwarm, HundredRobotsConvergeUnderKAsync) {
  const std::size_t n = 100;
  const algo::KknpsAlgorithm algo({.k = 2});
  const auto initial = metrics::random_connected_configuration(n, 4.0, 1.0, 404);
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 404;
  sched::KAsyncScheduler sched(n, p);
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.1, 3000000, 512));
  EXPECT_TRUE(metrics::analyze(engine.trace(), 1.0, 0.1).cohesive);
}

TEST(HullDiminishing, AndoInSSyncNeverGrowsHull) {
  const algo::AndoAlgorithm algo(1.0);
  const auto initial = metrics::random_connected_configuration(12, 1.6, 1.0, 51);
  sched::SSyncScheduler sched(initial.size());
  Engine engine(initial, algo, sched, exact());
  engine.run(4000);
  const auto hull0 = geom::convex_hull(initial);
  const auto& trace = engine.trace();
  for (double t = 0.0; t <= trace.end_time(); t += trace.end_time() / 25.0) {
    for (const Vec2 p : trace.configuration(t)) {
      EXPECT_TRUE(geom::hull_contains(hull0, p, 1e-7));
    }
  }
}

TEST(HullDiminishing, KatreniakInOneAsyncNeverGrowsHull) {
  const algo::KatreniakAlgorithm algo;
  const auto initial = metrics::random_connected_configuration(10, 1.4, 1.0, 52);
  sched::KAsyncScheduler::Params p;
  p.k = 1;
  p.seed = 52;
  sched::KAsyncScheduler sched(initial.size(), p);
  Engine engine(initial, algo, sched, exact());
  engine.run(4000);
  const auto hull0 = geom::convex_hull(initial);
  const auto& trace = engine.trace();
  for (double t = 0.0; t <= trace.end_time(); t += trace.end_time() / 25.0) {
    for (const Vec2 p : trace.configuration(t)) {
      EXPECT_TRUE(geom::hull_contains(hull0, p, 1e-7));
    }
  }
}

TEST(Rounds, FSyncRoundsMatchSchedulerRounds) {
  const algo::NullAlgorithm algo;
  sched::FSyncScheduler sched(5);
  Engine engine(metrics::line_configuration(5, 0.5), algo, sched, exact());
  engine.run(5 * 7);  // 7 full FSync rounds
  const auto bounds = engine.trace().round_boundaries();
  // Initial boundary + one per completed round.
  EXPECT_EQ(bounds.size(), 8u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(Rounds, AsyncRoundsAreWellOrdered) {
  const algo::KknpsAlgorithm algo({.k = 3});
  sched::KAsyncScheduler::Params p;
  p.k = 3;
  p.seed = 8;
  sched::KAsyncScheduler sched(9, p);
  Engine engine(metrics::line_configuration(9, 0.7), algo, sched, exact());
  engine.run(2000);
  const auto bounds = engine.trace().round_boundaries();
  EXPECT_GT(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(Collisions, KknpsPermitsButToleratesCoincidence) {
  // KKNPS does not promise collision avoidance; if robots meet, the run
  // must still progress (the multiplicity-collapse path in the engine).
  const algo::KknpsAlgorithm algo;
  sched::FSyncScheduler sched(3);
  // Symmetric triple that contracts through the centroid.
  Engine engine({{0.0, 0.0}, {0.8, 0.0}, {0.4, 0.69}}, algo, sched, exact());
  EXPECT_TRUE(engine.run_until_converged(1e-4, 200000));
}

TEST(Stability, ConvergedSwarmStaysConverged) {
  // Once within epsilon, further activations never re-expand the swarm
  // (maintenance half of the Convergence predicate).
  const algo::KknpsAlgorithm algo({.k = 2});
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 13;
  sched::KAsyncScheduler sched(8, p);
  Engine engine(metrics::line_configuration(8, 0.6), algo, sched, exact());
  EXPECT_TRUE(engine.run_until_converged(0.05, 500000));
  const double at_convergence = engine.current_diameter();
  engine.run(5000);  // keep scheduling
  EXPECT_LE(engine.current_diameter(), at_convergence + 1e-9);
}

}  // namespace
}  // namespace cohesion
