// Reproducibility guarantees: identical seeds give identical traces across
// every stochastic component (schedulers, error models, configuration
// generators) — the property all experiment tables rely on.
#include <gtest/gtest.h>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion {
namespace {

using core::Engine;
using core::EngineConfig;
using core::Trace;

Trace run_once(std::uint64_t seed) {
  const algo::KknpsAlgorithm algo({.k = 2});
  const auto initial = metrics::random_connected_configuration(10, 1.4, 1.0, seed);
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = seed;
  p.xi = 0.4;
  sched::KAsyncScheduler sched(initial.size(), p);
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.seed = seed;
  cfg.error.distance_delta = 0.03;
  cfg.error.skew_lambda = 0.05;
  cfg.error.motion_quad_coeff = 0.05;
  cfg.error.allow_reflection = true;
  Engine engine(initial, algo, sched, cfg);
  engine.run(1500);
  return engine.trace();
}

TEST(Determinism, IdenticalSeedsIdenticalTraces) {
  const Trace a = run_once(123);
  const Trace b = run_once(123);
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    const auto& ra = a.records()[i];
    const auto& rb = b.records()[i];
    EXPECT_EQ(ra.activation.robot, rb.activation.robot);
    EXPECT_DOUBLE_EQ(ra.activation.t_look, rb.activation.t_look);
    EXPECT_TRUE(geom::almost_equal(ra.realized, rb.realized, 0.0)) << "record " << i;
    EXPECT_TRUE(geom::almost_equal(ra.planned, rb.planned, 0.0)) << "record " << i;
  }
}

TEST(Determinism, DifferentSeedsDifferentTraces) {
  const Trace a = run_once(123);
  const Trace b = run_once(124);
  bool any_difference = a.records().size() != b.records().size();
  for (std::size_t i = 0; !any_difference && i < a.records().size(); ++i) {
    if (!geom::almost_equal(a.records()[i].realized, b.records()[i].realized, 0.0)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, SchedulersAreDeterministicGivenSeed) {
  sched::KAsyncScheduler::Params p;
  p.k = 3;
  p.seed = 9;
  sched::KAsyncScheduler s1(5, p), s2(5, p);
  const algo::KknpsAlgorithm algo({.k = 3});
  const auto initial = metrics::line_configuration(5, 0.8);
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.seed = 1;
  Engine e1(initial, algo, s1, cfg), e2(initial, algo, s2, cfg);
  e1.run(400);
  e2.run(400);
  ASSERT_EQ(e1.trace().records().size(), e2.trace().records().size());
  for (std::size_t i = 0; i < e1.trace().records().size(); ++i) {
    EXPECT_DOUBLE_EQ(e1.trace().records()[i].activation.t_look,
                     e2.trace().records()[i].activation.t_look);
  }
}

TEST(Determinism, EngineSeedAffectsOnlyPerception) {
  // With exact perception and no random frames, the engine seed is inert:
  // two different seeds give identical runs.
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::line_configuration(6, 0.8);
  auto run = [&](std::uint64_t engine_seed) {
    sched::FSyncScheduler sched(initial.size());
    EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    cfg.error.random_rotation = false;
    cfg.seed = engine_seed;
    Engine engine(initial, algo, sched, cfg);
    engine.run(600);
    return engine.current_configuration();
  };
  const auto a = run(1), b = run(999);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(geom::almost_equal(a[i], b[i], 0.0));
  }
}

TEST(Determinism, RotatedFramesDoNotChangeOutcomeForEquivariantAlgorithm) {
  // KKNPS is rotation-equivariant, so random frame rotations must not
  // change realized positions (within floating-point noise).
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::line_configuration(5, 0.8);
  auto run = [&](bool rotate) {
    sched::FSyncScheduler sched(initial.size());
    EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    cfg.error.random_rotation = rotate;
    cfg.seed = 4;
    Engine engine(initial, algo, sched, cfg);
    engine.run(300);
    return engine.current_configuration();
  };
  const auto plain = run(false), rotated = run(true);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_TRUE(geom::almost_equal(plain[i], rotated[i], 1e-6)) << i;
  }
}

}  // namespace
}  // namespace cohesion
