// The small impossibility intuitions of §6.1 and §7.2.1, made executable.
//
// 1. Absolute angle error freezes a regular polygon: if the adversary can
//    present a robot's two neighbours as exactly co-linear with it (which
//    absolute angle error permits at vertex separation V), a visibility-
//    safe algorithm must stay put — and a polygon of such robots never
//    moves, so no algorithm tolerates absolute angle error.
// 2. Forced motion (§7.2.1): with relative (skew-bounded) error the
//    perceived angle cannot be pushed to co-linearity for macroscopic turn
//    angles, and the algorithm does move — which is exactly the lever the
//    Section-7 adversary uses.
#include <gtest/gtest.h>

#include "algo/kknps.hpp"
#include "algo/lens_midpoint.hpp"
#include "core/engine.hpp"
#include "geometry/angles.hpp"
#include "metrics/configurations.hpp"
#include "sched/synchronous.hpp"

namespace cohesion {
namespace {

using core::RobotId;
using core::Snapshot;
using core::Time;
using geom::Vec2;

TEST(AngleErrorFreeze, ColinearPerceptionFreezesPolygon) {
  const std::size_t n = 8;
  const auto initial = metrics::regular_polygon_configuration(n, 1.0);  // side = V
  const algo::KknpsAlgorithm algo({.k = 1});
  sched::FSyncScheduler sched(n);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;
  core::Engine engine(initial, algo, sched, cfg);
  // Adversarial perception: keep true distances but flatten the perceived
  // directions of the two polygon neighbours to be antipodal (co-linear
  // through the observer) — admissible under absolute angle error.
  engine.set_perception_hook([](RobotId, Time, const Snapshot& honest) {
    Snapshot flat = honest;
    if (flat.neighbours.size() == 2) {
      const double d0 = flat.neighbours[0].position.norm();
      const double d1 = flat.neighbours[1].position.norm();
      flat.neighbours[0].position = {d0, 0.0};
      flat.neighbours[1].position = {-d1, 0.0};
    }
    return flat;
  });
  engine.run(10 * n);
  const auto final_cfg = engine.current_configuration();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(geom::almost_equal(final_cfg[i], initial[i], 1e-12))
        << "robot " << i << " moved despite perceived co-linearity";
  }
}

TEST(AngleErrorFreeze, ExactPerceptionPolygonConverges) {
  const std::size_t n = 8;
  const auto initial = metrics::regular_polygon_configuration(n, 1.0);
  const algo::KknpsAlgorithm algo({.k = 1});
  sched::FSyncScheduler sched(n);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.error.random_rotation = false;
  core::Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.05, 200000));
}

TEST(ForcedMotion, SkewBoundedErrorCannotHideMacroscopicTurns) {
  // §7.2.1: with skew lambda < 1, a true turn angle phi is perceived in
  // [phi(1-lambda), phi(1+lambda)]-ish; for phi bounded away from 0 the
  // perceived configuration stays non-co-linear and KKNPS must move.
  const algo::KknpsAlgorithm algo({.k = 1});
  core::Snapshot snap;
  const double phi = 0.5;  // macroscopic turn
  snap.neighbours.push_back({geom::unit(geom::kPi - phi / 2.0), false});
  snap.neighbours.push_back({geom::unit(-geom::kPi + phi / 2.0).rotated(phi), false});
  // Whatever small skew does to these directions, the angular gap stays
  // > pi and the computed move is non-nil.
  EXPECT_GT(algo.compute(snap).norm(), 0.0);
}

TEST(ForcedMotion, SpiralVictimMovesExactlyWhenAboveTolerance) {
  // The Section-7 victim's motion threshold is sharp: deviation above the
  // tolerance moves, below does not — termination of the sliver collapse
  // (paper §7.2.2) depends on this.
  const double tol = 1e-3;
  const algo::LensMidpointAlgorithm victim({.colinearity_tolerance = tol});
  auto make = [](double dev) {
    core::Snapshot s;
    s.neighbours.push_back({{-1.0, 0.0}, false});
    s.neighbours.push_back({geom::unit(dev), false});
    return s;
  };
  EXPECT_GT(victim.compute(make(2.0 * tol)).norm(), 0.0);
  EXPECT_EQ(victim.compute(make(0.5 * tol)).norm(), 0.0);
}

}  // namespace
}  // namespace cohesion
