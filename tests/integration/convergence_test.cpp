// End-to-end convergence: KKNPS and the baselines, across schedulers,
// configurations and error models — the paper's Theorem coverage.
#include <gtest/gtest.h>

#include "algo/baselines.hpp"
#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion {
namespace {

using core::Engine;
using core::EngineConfig;

EngineConfig exact(double v = 1.0, std::uint64_t seed = 1) {
  EngineConfig c;
  c.visibility.radius = v;
  c.error.random_rotation = true;  // arbitrary local frames, no distortion
  c.seed = seed;
  return c;
}

struct SchedCase {
  const char* label;
  std::size_t k;  // 0 = FSync, 1.. = KAsync(k); 100+x = KNestA(x); 99 = SSync
};

class KknpsConverges : public ::testing::TestWithParam<SchedCase> {};

TEST_P(KknpsConverges, RandomConnectedConfiguration) {
  const auto& param = GetParam();
  const std::size_t k = param.k >= 100 ? param.k - 100 : std::max<std::size_t>(param.k, 1);
  const algo::KknpsAlgorithm algo({.k = k});
  const auto initial = metrics::random_connected_configuration(14, 1.8, 1.0, 2024);

  std::unique_ptr<core::Scheduler> sched;
  if (param.k == 0) {
    sched = std::make_unique<sched::FSyncScheduler>(initial.size());
  } else if (param.k == 99) {
    sched = std::make_unique<sched::SSyncScheduler>(initial.size());
  } else if (param.k >= 100) {
    sched::KNestAScheduler::Params p;
    p.k = param.k - 100;
    sched = std::make_unique<sched::KNestAScheduler>(initial.size(), p);
  } else {
    sched::KAsyncScheduler::Params p;
    p.k = param.k;
    p.xi = 0.4;  // non-rigid motion
    sched = std::make_unique<sched::KAsyncScheduler>(initial.size(), p);
  }

  Engine engine(initial, algo, *sched, exact());
  const bool converged = engine.run_until_converged(0.05, 400000);
  EXPECT_TRUE(converged) << param.label << ": diameter " << engine.current_diameter();

  const auto rep = metrics::analyze(engine.trace(), 1.0, 0.05);
  EXPECT_TRUE(rep.cohesive) << param.label << ": worst stretch " << rep.worst_stretch;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KknpsConverges,
    ::testing::Values(SchedCase{"FSync", 0}, SchedCase{"SSync", 99}, SchedCase{"OneAsync", 1},
                      SchedCase{"TwoAsync", 2}, SchedCase{"FourAsync", 4},
                      SchedCase{"OneNestA", 101}, SchedCase{"ThreeNestA", 103}),
    [](const auto& info) { return info.param.label; });

TEST(KknpsConvergence, LineConfiguration) {
  const algo::KknpsAlgorithm algo({.k = 2});
  const auto initial = metrics::line_configuration(10, 0.9);
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  sched::KAsyncScheduler sched(initial.size(), p);
  Engine engine(initial, algo, sched, exact());
  EXPECT_TRUE(engine.run_until_converged(0.05, 600000));
}

TEST(KknpsConvergence, TwoClusters) {
  const algo::KknpsAlgorithm algo({.k = 2});
  const auto initial = metrics::two_cluster_configuration(16, 3, 1.0, 11);
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  sched::KAsyncScheduler sched(initial.size(), p);
  Engine engine(initial, algo, sched, exact());
  EXPECT_TRUE(engine.run_until_converged(0.05, 600000));
  EXPECT_TRUE(metrics::analyze(engine.trace(), 1.0, 0.05).cohesive);
}

TEST(KknpsConvergence, WithPerceptionError) {
  // §6.1: tolerant variant with delta-bounded distance error and small skew.
  const double delta = 0.05;
  const algo::KknpsAlgorithm algo({.k = 2, .distance_delta = delta});
  const auto initial = metrics::random_connected_configuration(10, 1.5, 1.0, 5);
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  sched::KAsyncScheduler sched(initial.size(), p);
  EngineConfig cfg = exact();
  cfg.error.distance_delta = delta;
  cfg.error.skew_lambda = 0.05;
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.08, 600000));
  EXPECT_TRUE(metrics::analyze(engine.trace(), 1.0, 0.08).cohesive);
}

TEST(KknpsConvergence, WithMotionError) {
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::random_connected_configuration(8, 1.2, 1.0, 6);
  sched::SSyncScheduler sched(initial.size());
  EngineConfig cfg = exact();
  cfg.error.motion_quad_coeff = 0.2;  // quadratic motion error (§6.1)
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.08, 400000));
}

TEST(KknpsConvergence, ReflectedFramesNoChirality) {
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::random_connected_configuration(8, 1.2, 1.0, 7);
  sched::SSyncScheduler sched(initial.size());
  EngineConfig cfg = exact();
  cfg.error.allow_reflection = true;
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.05, 400000));
}

TEST(KknpsConvergence, CrashFaultConvergesToCrashSite) {
  // §6.1: a single fail-stop robot; the rest converge to its location.
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::line_configuration(6, 0.8);
  sched::FSyncScheduler sched(initial.size());
  Engine engine(initial, algo, sched, exact());
  engine.crash(0);
  EXPECT_TRUE(engine.run_until_converged(0.05, 400000));
  const auto final_cfg = engine.current_configuration();
  for (const auto& p : final_cfg) {
    EXPECT_LE(p.distance_to(initial[0]), 0.1) << "robots should gather at the crash site";
  }
}

TEST(KknpsConvergence, UnlimitedVisibilityUnderAsync) {
  // §6.2: when V exceeds the initial diameter, the 1-Async algorithm
  // converges even under an unbounded Async scheduler.
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::random_connected_configuration(10, 1.0, 10.0, 8);
  sched::KAsyncScheduler::Params p;
  p.k = static_cast<std::size_t>(-1);  // unbounded
  p.min_duration = 0.5;
  p.max_duration = 5.0;
  sched::KAsyncScheduler sched(initial.size(), p);
  Engine engine(initial, algo, sched, exact(/*v=*/10.0));
  EXPECT_TRUE(engine.run_until_converged(0.05, 400000));
}

TEST(BaselineConvergence, AndoConvergesInSSync) {
  const algo::AndoAlgorithm algo(1.0);
  const auto initial = metrics::random_connected_configuration(10, 1.5, 1.0, 9);
  sched::SSyncScheduler sched(initial.size());
  Engine engine(initial, algo, sched, exact());
  EXPECT_TRUE(engine.run_until_converged(0.05, 400000));
  EXPECT_TRUE(metrics::analyze(engine.trace(), 1.0, 0.05).cohesive);
}

TEST(BaselineConvergence, KatreniakConvergesInOneAsync) {
  const algo::KatreniakAlgorithm algo;
  const auto initial = metrics::random_connected_configuration(8, 1.2, 1.0, 10);
  sched::KAsyncScheduler::Params p;
  p.k = 1;
  sched::KAsyncScheduler sched(initial.size(), p);
  Engine engine(initial, algo, sched, exact());
  EXPECT_TRUE(engine.run_until_converged(0.05, 600000));
}

TEST(BaselineConvergence, CogConvergesUnlimitedVisibilityFSync) {
  const algo::CogAlgorithm algo;
  const auto initial = metrics::random_connected_configuration(12, 2.0, 10.0, 11);
  sched::FSyncScheduler sched(initial.size());
  Engine engine(initial, algo, sched, exact(/*v=*/10.0));
  EXPECT_TRUE(engine.run_until_converged(0.05, 200000));
}

TEST(BaselineConvergence, GcmConvergesUnlimitedVisibilityFSync) {
  const algo::GcmAlgorithm algo;
  const auto initial = metrics::random_connected_configuration(12, 2.0, 10.0, 12);
  sched::FSyncScheduler sched(initial.size());
  Engine engine(initial, algo, sched, exact(/*v=*/10.0));
  EXPECT_TRUE(engine.run_until_converged(0.05, 200000));
}

}  // namespace
}  // namespace cohesion
