// End-to-end result-cache coverage at the process level: concurrent
// sharded `cohesion_run --shard i/N --cache DIR` workers sharing one cache
// directory, merged by `cohesion_merge` back to the byte-identical
// single-process `--no-timing` report — cold and warm; plus the
// atomic-insert race (several whole-sweep processes, and several worker
// threads in one process, all publishing the same keys at once — the
// in-process variant is what COHESION_SANITIZE=thread inspects). Unit
// layer: tests/run/result_cache_test.cpp.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "run/batch_runner.hpp"
#include "run/result_cache.hpp"
#include "run/spec.hpp"

namespace cohesion::run {
namespace {

namespace fs = std::filesystem;

std::string build_dir() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return fs::path(buf).parent_path().string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

int wait_code(::pid_t pid) {
  int st = 0;
  ::waitpid(pid, &st, 0);
  if (WIFEXITED(st)) return WEXITSTATUS(st);
  if (WIFSIGNALED(st)) return 128 + WTERMSIG(st);
  return -1;
}

::pid_t spawn_tool(const std::vector<std::string>& args, const std::string& log_path) {
  std::vector<std::string> copy = args;
  const ::pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int log = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log >= 0) {
    ::dup2(log, STDOUT_FILENO);
    ::dup2(log, STDERR_FILENO);
    if (log > STDERR_FILENO) ::close(log);
  }
  std::vector<char*> argv;
  for (std::string& a : copy) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);
}

int run_tool(const std::vector<std::string>& args, const std::string& log_path) {
  return wait_code(spawn_tool(args, log_path));
}

class CacheE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    runner_ = build_dir() + "/cohesion_run";
    merger_ = build_dir() + "/cohesion_merge";
    if (!fs::exists(runner_) || !fs::exists(merger_)) {
      GTEST_SKIP() << "cohesion_run/cohesion_merge not found next to the test binary";
    }
    dir_ = std::string(::testing::TempDir()) + "cache_e2e_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    spec_path_ = dir_ + "/sweep.json";
    std::ofstream out(spec_path_);
    out << sweep_spec().to_json().dump(2) << '\n';
    cache_dir_ = dir_ + "/cache";
    log_ = dir_ + "/workers.log";
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// 3 scheduler-k variants x 2 repeats = 6 runs with derived seeds — the
  /// same shape the shard/supervisor e2e layers use, sized to finish fast.
  static ExperimentSpec sweep_spec() {
    ExperimentSpec e;
    e.name = "cached";
    e.base.n = 8;
    e.base.seed = 2026;
    e.base.algorithm = {.type = "kknps", .params = Json::parse(R"({"k": 2})")};
    e.base.scheduler = {.type = "kasync", .params = Json::parse(R"({"xi": 0.5})")};
    e.base.initial = {.type = "line", .params = Json::parse(R"({"spacing": 0.9})")};
    e.base.stop.epsilon = 0.05;
    e.base.stop.max_activations = 20000;
    e.repeats = 2;
    e.axes.push_back({"scheduler.params.k", {Json(1), Json(2), Json(3)}});
    return e;
  }

  /// How many entry files (not temp leftovers) the shared cache dir holds.
  std::pair<std::size_t, std::size_t> cache_census() const {
    std::size_t entries = 0;
    std::size_t temps = 0;
    for (const auto& it : fs::directory_iterator(cache_dir_)) {
      const std::string name = it.path().filename().string();
      if (name.find(".tmp.") != std::string::npos) {
        ++temps;
      } else {
        ++entries;
      }
    }
    return {entries, temps};
  }

  std::string runner_;
  std::string merger_;
  std::string dir_;
  std::string spec_path_;
  std::string cache_dir_;
  std::string log_;
};

TEST_F(CacheE2E, ShardedWorkersShareOneCacheAndMergeByteIdentical) {
  // Reference: fresh single process, cache disabled.
  const std::string ref_path = dir_ + "/ref.json";
  ASSERT_EQ(run_tool({runner_, spec_path_, "--no-cache", "--no-timing", "--out", ref_path}, log_),
            0);
  const std::string reference = read_file(ref_path);
  ASSERT_FALSE(reference.empty());

  const auto shard_round = [&](const std::string& tag) {
    std::vector<::pid_t> pids;
    std::vector<std::string> partials;
    for (int i = 0; i < 3; ++i) {
      const std::string partial = dir_ + "/" + tag + "_p" + std::to_string(i) + ".json";
      partials.push_back(partial);
      pids.push_back(spawn_tool({runner_, spec_path_, "--shard", std::to_string(i) + "/3",
                                 "--cache", cache_dir_, "--no-timing", "--out", partial},
                                log_));
    }
    for (const ::pid_t pid : pids) EXPECT_EQ(wait_code(pid), 0);
    const std::string merged = dir_ + "/" + tag + "_merged.json";
    EXPECT_EQ(run_tool({merger_, partials[0], partials[1], partials[2], "--out", merged}, log_), 0);
    return read_file(merged);
  };

  // Cold round: three concurrent workers populate one directory; the merge
  // must equal the no-cache single-process report byte for byte.
  EXPECT_EQ(shard_round("cold"), reference);
  auto [entries, temps] = cache_census();
  EXPECT_EQ(entries, 6u) << "6 derived-seed runs, 6 entries";
  EXPECT_EQ(temps, 0u) << "atomic publish must leave no temp files";

  // Warm round: same workers again — every run served, same bytes again.
  EXPECT_EQ(shard_round("warm"), reference);
  const std::string worker_log = read_file(log_);
  EXPECT_NE(worker_log.find("cache: 2 hits, 0 misses"), std::string::npos)
      << "each warm shard (2 runs) must report pure hits:\n" << worker_log;

  // A warm whole-sweep process reproduces the reference from hits alone.
  const std::string warm_path = dir_ + "/warm_full.json";
  ASSERT_EQ(run_tool({runner_, spec_path_, "--cache", cache_dir_, "--no-timing", "--out",
                      warm_path},
                     log_),
            0);
  EXPECT_EQ(read_file(warm_path), reference);
  EXPECT_NE(read_file(log_).find("cache: 6 hits, 0 misses"), std::string::npos);
}

TEST_F(CacheE2E, RacingWholeSweepProcessesPublishAtomically) {
  // Three *unsharded* processes run the whole sweep at once against one
  // empty cache directory — every insert races every other process's
  // insert of the same key. Deterministic runs make the bytes identical,
  // so last-rename-wins must leave exactly one valid entry per key and
  // three byte-identical reports.
  std::vector<::pid_t> pids;
  std::vector<std::string> outs;
  for (int i = 0; i < 3; ++i) {
    const std::string out = dir_ + "/race" + std::to_string(i) + ".json";
    outs.push_back(out);
    pids.push_back(
        spawn_tool({runner_, spec_path_, "--cache", cache_dir_, "--no-timing", "--out", out},
                   log_));
  }
  for (const ::pid_t pid : pids) EXPECT_EQ(wait_code(pid), 0);
  const std::string first = read_file(outs[0]);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(read_file(outs[1]), first);
  EXPECT_EQ(read_file(outs[2]), first);

  auto [entries, temps] = cache_census();
  EXPECT_EQ(entries, 6u);
  EXPECT_EQ(temps, 0u);

  // Whatever the interleaving published must now serve a clean warm run.
  const std::string warm = dir_ + "/race_warm.json";
  ASSERT_EQ(run_tool({runner_, spec_path_, "--cache", cache_dir_, "--no-timing", "--out", warm},
                     log_),
            0);
  EXPECT_EQ(read_file(warm), first);
  // No worker may ever have seen a torn entry — a reject would have been
  // announced on stderr with a "; recomputing" cause line.
  const std::string worker_log = read_file(log_);
  EXPECT_EQ(worker_log.find("recomputing"), std::string::npos) << worker_log;
}

TEST_F(CacheE2E, WorkerThreadsShareOneCacheInProcess) {
  // The thread-sanitizer target: four workers of one BatchRunner hammer a
  // shared ResultCache whose keys collide (pinned-seed repeats make every
  // variant's repeats one identity). Lookups, inserts and the stats
  // counters all race; the report must not care.
  ExperimentSpec e;
  e.name = "tsan";
  e.base.n = 6;
  e.base.seed = 99;
  e.base.stop.max_activations = 2000;
  e.repeats = 4;
  e.axes.push_back({"seed", {Json(51), Json(52), Json(53)}});  // 3 variants x 4 repeats

  BatchRunner::Options plain;
  plain.threads = 4;
  const std::string reference =
      BatchRunner::report_json(e, BatchRunner(plain).run(e), false).dump(2);

  ResultCache cache(ResultCache::Options{.dir = cache_dir_});
  BatchRunner::Options cached = plain;
  cached.cache = &cache;
  const std::string warm = BatchRunner::report_json(e, BatchRunner(cached).run(e), false).dump(2);
  EXPECT_EQ(warm, reference);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 12u) << "every run looks up exactly once";
  EXPECT_GE(stats.misses, 3u) << "each of the 3 identities misses at least once";
  EXPECT_EQ(stats.rejects, 0u);
  EXPECT_EQ(stats.inserts, stats.misses) << "every executed run publishes";

  // A second batch over the now-complete cache is pure hits.
  ResultCache warm_cache(ResultCache::Options{.dir = cache_dir_});
  BatchRunner::Options rewarmed = plain;
  rewarmed.cache = &warm_cache;
  EXPECT_EQ(BatchRunner::report_json(e, BatchRunner(rewarmed).run(e), false).dump(2), reference);
  EXPECT_EQ(warm_cache.stats().hits, 12u);
  EXPECT_EQ(warm_cache.stats().misses, 0u);

  auto [entries, temps] = cache_census();
  EXPECT_EQ(entries, 3u) << "12 runs, 3 identities, 3 entries";
  EXPECT_EQ(temps, 0u);
}

}  // namespace
}  // namespace cohesion::run
