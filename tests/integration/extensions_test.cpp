// The §6.2 / §6.3 extension claims, exercised end-to-end:
//   * open visibility balls (strictly < V);
//   * per-robot visibility radii differing by a small factor;
//   * disconnected initial configurations: each component converges by
//     itself (§6.3.1);
//   * co-located robots and multiplicity perception.
#include <gtest/gtest.h>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/visibility.hpp"
#include "geometry/convex_hull.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion {
namespace {

using core::Engine;
using core::EngineConfig;
using geom::Vec2;

TEST(Extensions, OpenVisibilityBall) {
  // §6.2: with an open ball, V_Z is always a strict underestimate of V and
  // the algorithm still converges. Spacing strictly below V.
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::line_configuration(8, 0.9);
  sched::SSyncScheduler sched(initial.size());
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.visibility.open_ball = true;
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.05, 300000));
}

TEST(Extensions, PerRobotRadiiSmallSpread) {
  // §6.2: individual radii differing by a small known factor. The initial
  // mutual-visibility graph (at the smallest radius) must be connected.
  const std::size_t n = 10;
  const auto initial = metrics::line_configuration(n, 0.85);
  const algo::KknpsAlgorithm algo({.k = 2});
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 3;
  sched::KAsyncScheduler sched(n, p);
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.visibility.per_robot_radii.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cfg.visibility.per_robot_radii[i] = 1.0 + 0.1 * static_cast<double>(i % 3) / 2.0;
  }
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.05, 400000));
  // Cohesion at the smallest radius.
  const auto rep = metrics::analyze(engine.trace(), 1.0, 0.05);
  EXPECT_TRUE(rep.cohesive);
}

TEST(Extensions, DisconnectedComponentsConvergeSeparately) {
  // §6.3.1: two far-apart clusters each converge to their own point and
  // never interact.
  std::vector<Vec2> initial;
  const auto left = metrics::line_configuration(5, 0.8);
  for (const Vec2 p : left) initial.push_back(p);
  for (const Vec2 p : left) initial.push_back(p + Vec2{100.0, 0.0});

  const algo::KknpsAlgorithm algo({.k = 1});
  sched::FSyncScheduler sched(initial.size());
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  Engine engine(initial, algo, sched, cfg);
  engine.run(60000);

  const auto final_cfg = engine.current_configuration();
  const std::vector<Vec2> left_final(final_cfg.begin(), final_cfg.begin() + 5);
  const std::vector<Vec2> right_final(final_cfg.begin() + 5, final_cfg.end());
  EXPECT_LE(geom::set_diameter(left_final), 0.05);
  EXPECT_LE(geom::set_diameter(right_final), 0.05);
  // Components never merged.
  EXPECT_GE(left_final[0].distance_to(right_final[0]), 90.0);
}

TEST(Extensions, ColocatedRobotsConverge) {
  // Multiplicities perceived as a single robot must not break convergence.
  std::vector<Vec2> initial{{0.0, 0.0}, {0.0, 0.0}, {0.7, 0.0}, {0.7, 0.0}, {1.4, 0.0}};
  const algo::KknpsAlgorithm algo({.k = 1});
  sched::SSyncScheduler sched(initial.size());
  EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.05, 300000));
}

TEST(Extensions, MultiplicityDetectionDoesNotChangeKknps) {
  // KKNPS ignores the multiplicity flag; with detection on, behaviour is
  // identical for the same seed.
  std::vector<Vec2> initial{{0.0, 0.0}, {0.0, 0.0}, {0.8, 0.0}};
  const algo::KknpsAlgorithm algo({.k = 1});
  auto run = [&](bool detect) {
    sched::FSyncScheduler sched(initial.size());
    EngineConfig cfg;
    cfg.visibility.radius = 1.0;
    cfg.visibility.multiplicity_detection = detect;
    cfg.error.random_rotation = false;
    cfg.seed = 5;
    Engine engine(initial, algo, sched, cfg);
    engine.run(300);
    return engine.current_configuration();
  };
  const auto with = run(true);
  const auto without = run(false);
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_TRUE(geom::almost_equal(with[i], without[i], 1e-9));
  }
}

TEST(Extensions, VisibilityExceedingDiameterSurvivesUnboundedAsync) {
  // §6.2: with V above the initial diameter, the k=1 algorithm converges
  // under a fully unbounded Async scheduler — no multiplicity detection
  // needed.
  const auto initial = metrics::random_connected_configuration(9, 0.8, 5.0, 77);
  const algo::KknpsAlgorithm algo({.k = 1});
  sched::KAsyncScheduler::Params p;
  p.k = static_cast<std::size_t>(-1);
  p.min_duration = 0.2;
  p.max_duration = 9.0;
  p.seed = 77;
  sched::KAsyncScheduler sched(initial.size(), p);
  EngineConfig cfg;
  cfg.visibility.radius = 5.0;
  Engine engine(initial, algo, sched, cfg);
  EXPECT_TRUE(engine.run_until_converged(0.05, 400000));
}

}  // namespace
}  // namespace cohesion
