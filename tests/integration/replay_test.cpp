// Replay pipeline: a run exported through trace_io and re-imported must
// yield identical analysis results — the offline-analysis workflow of the
// CLI tool (cohesion_sim --trace).
#include <gtest/gtest.h>

#include <sstream>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/trace_io.hpp"
#include "core/validators.hpp"
#include "metrics/configurations.hpp"
#include "metrics/stats.hpp"
#include "sched/asynchronous.hpp"

namespace cohesion {
namespace {

TEST(Replay, AnalysisIdenticalAfterRoundTrip) {
  const algo::KknpsAlgorithm algo({.k = 2});
  const auto initial = metrics::random_connected_configuration(12, 1.6, 1.0, 99);
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 99;
  p.xi = 0.5;
  sched::KAsyncScheduler sched(initial.size(), p);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  cfg.seed = 99;
  cfg.error.distance_delta = 0.02;
  core::Engine engine(initial, algo, sched, cfg);
  engine.run(3000);

  std::stringstream buf;
  core::write_trace_csv(engine.trace(), buf);
  const core::Trace replayed = core::read_trace_csv(buf);

  const auto a = metrics::analyze(engine.trace(), 1.0, 0.05);
  const auto b = metrics::analyze(replayed, 1.0, 0.05);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_DOUBLE_EQ(a.initial_diameter, b.initial_diameter);
  EXPECT_DOUBLE_EQ(a.final_diameter, b.final_diameter);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.rounds_to_halve, b.rounds_to_halve);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.cohesive, b.cohesive);
  EXPECT_DOUBLE_EQ(a.worst_stretch, b.worst_stretch);
}

TEST(Replay, ValidatorsAgreeAfterRoundTrip) {
  const algo::KknpsAlgorithm algo({.k = 3});
  const auto initial = metrics::line_configuration(7, 0.8);
  sched::KAsyncScheduler::Params p;
  p.k = 3;
  p.seed = 31;
  sched::KAsyncScheduler sched(initial.size(), p);
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  core::Engine engine(initial, algo, sched, cfg);
  engine.run(800);

  std::stringstream buf;
  core::write_trace_csv(engine.trace(), buf);
  const core::Trace replayed = core::read_trace_csv(buf);

  EXPECT_EQ(core::max_activations_within_interval(engine.trace()),
            core::max_activations_within_interval(replayed));
  EXPECT_EQ(core::is_k_async(engine.trace(), 3), core::is_k_async(replayed, 3));
  EXPECT_EQ(core::is_nested_activation(engine.trace()), core::is_nested_activation(replayed));
}

TEST(Replay, StatsOverTimeMatchesDirectSampling) {
  const algo::KknpsAlgorithm algo({.k = 1});
  const auto initial = metrics::line_configuration(5, 0.7);
  sched::KAsyncScheduler sched(initial.size());
  core::EngineConfig cfg;
  cfg.visibility.radius = 1.0;
  core::Engine engine(initial, algo, sched, cfg);
  engine.run(500);

  const std::vector<core::Time> times{0.0, 1.0, 5.0, 20.0, engine.trace().end_time()};
  const auto series = metrics::stats_over_time(engine.trace(), times, 1.0);
  ASSERT_EQ(series.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto direct = metrics::configuration_stats(engine.trace().configuration(times[i]), 1.0);
    EXPECT_DOUBLE_EQ(series[i].diameter, direct.diameter);
    EXPECT_DOUBLE_EQ(series[i].hull_perimeter, direct.hull_perimeter);
    EXPECT_EQ(series[i].connected, direct.connected);
  }
  // Diameter non-increasing over the sampled times (hull-diminishing).
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i].diameter, series[i - 1].diameter + 1e-9);
  }
}

}  // namespace
}  // namespace cohesion
