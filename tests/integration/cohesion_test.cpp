// Visibility-preservation (Theorems 3 and 4) exercised end-to-end: under
// k-NestA and k-Async with matching algorithm scaling, initially visible
// pairs stay visible; acquired strong visibility is never lost; and the
// hull-diminishing invariant of §5 holds along the whole trace.
#include <gtest/gtest.h>

#include "algo/kknps.hpp"
#include "core/engine.hpp"
#include "core/visibility.hpp"
#include "geometry/convex_hull.hpp"
#include "metrics/configurations.hpp"
#include "sched/asynchronous.hpp"
#include "sched/synchronous.hpp"

namespace cohesion {
namespace {

using core::Engine;
using core::EngineConfig;
using core::Trace;
using geom::Vec2;

EngineConfig exact(std::uint64_t seed) {
  EngineConfig c;
  c.visibility.radius = 1.0;
  c.error.random_rotation = true;
  c.seed = seed;
  return c;
}

/// Sample the trace densely and return the worst stretch of initially
/// visible pairs plus the acquired-visibility ledger.
struct VisibilityAudit {
  double worst_initial_stretch = 0.0;  // must stay <= 1 (Thm 3/4 part (i))
  bool acquired_kept = true;           // part (ii): <= V/2 once => <= V after
};

VisibilityAudit audit(const Trace& trace, double v, double dt) {
  VisibilityAudit a;
  const auto& initial = trace.initial_configuration();
  const std::size_t n = initial.size();
  const double end = trace.end_time() + 1.0;
  std::vector<std::vector<bool>> acquired(n, std::vector<bool>(n, false));
  for (double t = 0.0; t <= end; t += dt) {
    const auto cfg = trace.configuration(t);
    a.worst_initial_stretch =
        std::max(a.worst_initial_stretch, core::worst_initial_pair_stretch(initial, cfg, v));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = cfg[i].distance_to(cfg[j]);
        if (acquired[i][j] && d > v + 1e-9) a.acquired_kept = false;
        if (d <= v / 2.0 + 1e-12) acquired[i][j] = true;
      }
    }
  }
  return a;
}

struct CohesionCase {
  const char* label;
  std::size_t k;
  bool nested;
  std::uint64_t seed;
};

class Theorem34 : public ::testing::TestWithParam<CohesionCase> {};

TEST_P(Theorem34, VisibilityPreserved) {
  const auto& param = GetParam();
  const algo::KknpsAlgorithm algo({.k = param.k});
  const auto initial = metrics::random_connected_configuration(12, 1.6, 1.0, param.seed);

  std::unique_ptr<core::Scheduler> sched;
  if (param.nested) {
    sched::KNestAScheduler::Params p;
    p.k = param.k;
    p.seed = param.seed;
    p.xi = 0.3;
    sched = std::make_unique<sched::KNestAScheduler>(initial.size(), p);
  } else {
    sched::KAsyncScheduler::Params p;
    p.k = param.k;
    p.seed = param.seed;
    p.xi = 0.3;
    sched = std::make_unique<sched::KAsyncScheduler>(initial.size(), p);
  }

  Engine engine(initial, algo, *sched, exact(param.seed));
  engine.run(20000);

  const VisibilityAudit a = audit(engine.trace(), 1.0, 0.25);
  EXPECT_LE(a.worst_initial_stretch, 1.0 + 1e-9) << param.label;
  EXPECT_TRUE(a.acquired_kept) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem34,
    ::testing::Values(CohesionCase{"NestA_k1", 1, true, 21}, CohesionCase{"NestA_k3", 3, true, 22},
                      CohesionCase{"NestA_k6", 6, true, 23}, CohesionCase{"Async_k1", 1, false, 24},
                      CohesionCase{"Async_k2", 2, false, 25},
                      CohesionCase{"Async_k5", 5, false, 26}),
    [](const auto& info) { return info.param.label; });

TEST(HullDiminishing, ConvexHullsAreNested) {
  // §5: CH_{t+} subseteq CH_t, including planned-but-unrealized trajectories.
  // We check the realized-positions hull at increasing times against the
  // hull of positions + planned endpoints at an earlier time.
  const algo::KknpsAlgorithm algo({.k = 2});
  const auto initial = metrics::random_connected_configuration(10, 1.4, 1.0, 31);
  sched::KAsyncScheduler::Params p;
  p.k = 2;
  p.seed = 31;
  sched::KAsyncScheduler sched(initial.size(), p);
  Engine engine(initial, algo, sched, exact(31));
  engine.run(5000);
  const Trace& trace = engine.trace();

  const auto hull0 = geom::convex_hull(initial);
  const double end = trace.end_time();
  for (double t = 0.0; t <= end; t += end / 40.0) {
    for (const Vec2 pos : trace.configuration(t)) {
      EXPECT_TRUE(geom::hull_contains(hull0, pos, 1e-7))
          << "position escaped the initial hull at t=" << t;
    }
  }
  // Monotone diameter at sampled times.
  double prev = geom::set_diameter(trace.configuration(0.0));
  for (double t = 0.0; t <= end; t += end / 20.0) {
    const double d = geom::set_diameter(trace.configuration(t));
    EXPECT_LE(d, prev + 1e-7);
    prev = d;
  }
}

TEST(StrongVisibility, AcquiredStrongNeighboursStayVisible) {
  // Focused version of Thm 3/4(ii): force a pair to become strongly visible
  // and check it never separates past V afterwards.
  const algo::KknpsAlgorithm algo({.k = 3});
  const auto initial = metrics::line_configuration(8, 0.95);
  sched::KNestAScheduler::Params p;
  p.k = 3;
  p.xi = 0.25;
  sched::KNestAScheduler sched(initial.size(), p);
  Engine engine(initial, algo, sched, exact(77));
  engine.run(30000);
  const VisibilityAudit a = audit(engine.trace(), 1.0, 0.2);
  EXPECT_TRUE(a.acquired_kept);
  EXPECT_LE(a.worst_initial_stretch, 1.0 + 1e-9);
}

TEST(UnscaledAblation, LargeKWithoutScalingCanLoseVisibilityHeadroom) {
  // The 1/k scaling is load-bearing: running the k=1 motion function under
  // a deep k-Async scheduler must at least consume the safety margin that
  // the scaled variant preserves. (The full separation is demonstrated in
  // bench E10; here we assert the scaled variant dominates the unscaled one
  // in worst pair stretch.)
  const auto initial = metrics::line_configuration(10, 0.98);
  auto run = [&](std::size_t algo_k) {
    const algo::KknpsAlgorithm algo({.k = algo_k});
    sched::KAsyncScheduler::Params p;
    p.k = 8;
    p.seed = 41;
    p.min_duration = 1.0;
    p.max_duration = 6.0;
    p.xi = 0.3;
    sched::KAsyncScheduler sched(initial.size(), p);
    Engine engine(initial, algo, sched, exact(41));
    engine.run(12000);
    return audit(engine.trace(), 1.0, 0.3).worst_initial_stretch;
  };
  const double scaled = run(8);
  const double unscaled = run(1);
  EXPECT_LE(scaled, 1.0 + 1e-9);
  EXPECT_GE(unscaled, scaled - 1e-9);
}

}  // namespace
}  // namespace cohesion
