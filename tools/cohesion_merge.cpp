// cohesion_merge — combine the partial reports of a sharded sweep
// (`cohesion_run sweep.json --shard i/N`) into the exact report a single
// process would have produced: byte-identical to
// `cohesion_run sweep.json --no-timing` (asserted in bench/run_benches.sh
// and tests/run/shard_test.cpp).
//
//   cohesion_merge p0.json p1.json p2.json            # merged report, stdout
//   cohesion_merge p*.json --out report.json          # ... to a file
//
// Input order does not matter; every shard of the sweep must be present
// exactly once and the partials must come from the same spec file — merge
// refuses anything else with an error naming the missing/conflicting
// shard. Cache-served outcomes survive merge untouched: a shard worker
// running with --cache writes the byte-identical outcome a recomputation
// would have (run/result_cache contract), so partials produced by any mix
// of warm and cold workers merge to the same report — asserted end to end
// in tests/integration/cache_e2e_test.cpp. Runbook: docs/operations.md.
// Exit codes (taxonomy in
// docs/experiments.md): 0 success, 1 invalid/incomplete partials
// (permanent — the inputs are wrong), 2 bad usage, 3 transient I/O (an
// input not readable yet, --out unwritable — retry once the file lands).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "run/exit_codes.hpp"
#include "run/shard.hpp"

using namespace cohesion;

namespace {

int usage(int code) {
  std::cout << "usage: cohesion_merge <partial1.json> <partial2.json> ... [--out FILE]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.starts_with("--")) {
      inputs.push_back(arg);
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (inputs.empty()) return usage(2);

  try {
    std::vector<run::Json> partials;
    partials.reserve(inputs.size());
    for (const std::string& path : inputs) {
      // An absent partial is transient (its shard may still be running or
      // copying); a present-but-invalid one is a permanent input error.
      std::ifstream probe(path);
      if (!probe) throw run::TransientError("cannot open partial report " + path);
      probe.close();
      partials.push_back(run::Json::parse_file(path));
    }
    const run::Json report = run::merge_partial_reports(partials);

    if (out_path.empty()) {
      std::cout << report.dump(2) << '\n';
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return run::kExitTransient;
      }
      out << report.dump(2) << '\n';
      std::cerr << "merged report written: " << out_path << " (" << inputs.size()
                << " partials)\n";
    }
    return run::kExitSuccess;
  } catch (const run::TransientError& e) {
    std::cerr << "cohesion_merge: " << e.what() << " (transient — retrying may succeed)\n";
    return run::kExitTransient;
  } catch (const std::exception& e) {
    std::cerr << "cohesion_merge: " << e.what() << "\n";
    return run::kExitPermanent;
  }
}
