// cohesion_run — declarative batch driver: load an experiment spec (JSON),
// fan it out over a worker pool, emit an aggregated report.
//
//   cohesion_run sweep.json                        # run, report to stdout
//   cohesion_run sweep.json --threads 8            # parallel across runs
//   cohesion_run sweep.json --out report.json      # write report to a file
//   cohesion_run sweep.json --no-timing            # deterministic output
//                                                  # (diffable across thread
//                                                  #  counts)
//   cohesion_run --list                            # registry keys
//
// The spec is either a full ExperimentSpec ({"base": {...}, "sweep": [...],
// "repeats": N}) or a bare RunSpec object, which runs once. Spec schema and
// seed-derivation rules: docs/experiments.md. Exit code: 0 when every run
// executed without error, 1 otherwise.
#include <fstream>
#include <iostream>
#include <string>

#include "run/batch_runner.hpp"
#include "run/registry.hpp"

using namespace cohesion;

namespace {

int list_registries() {
  const auto print = [](const char* kind, const std::vector<std::string>& keys) {
    std::cout << kind << ":";
    for (const std::string& k : keys) std::cout << ' ' << k;
    std::cout << '\n';
  };
  print("algorithms", run::algorithms().keys());
  print("schedulers", run::schedulers().keys());
  print("errors", run::errors().keys());
  print("initials", run::initials().keys());
  return 0;
}

int usage(int code) {
  std::cout << "usage: cohesion_run <spec.json> [--threads N] [--out FILE] [--no-timing]\n"
               "       cohesion_run --list\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  std::size_t threads = 1;
  bool timing = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") return list_registries();
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--no-timing") {
      timing = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        threads = static_cast<std::size_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "bad --threads value: " << argv[i] << "\n";
        return usage(2);
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (spec_path.empty() && !arg.starts_with("--")) {
      spec_path = arg;
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (spec_path.empty()) return usage(2);

  try {
    const run::Json doc = run::Json::parse_file(spec_path);
    // A bare RunSpec (no "base") runs as a one-run experiment.
    run::ExperimentSpec experiment;
    if (doc.contains("base")) {
      experiment = run::ExperimentSpec::from_json(doc);
    } else {
      experiment.base = run::RunSpec::from_json(doc);
      experiment.name = experiment.base.name;
    }

    run::BatchRunner::Options options;
    options.threads = threads;
    const run::BatchResult result = run::BatchRunner(options).run(experiment);
    const run::Json report = run::BatchRunner::report_json(experiment, result, timing);

    if (out_path.empty()) {
      std::cout << report.dump(2) << '\n';
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
      }
      out << report.dump(2) << '\n';
      std::cerr << "report written: " << out_path << " (" << result.outcomes.size() << " runs, "
                << result.threads << " threads, " << result.wall_seconds << " s)\n";
    }

    for (const run::RunOutcome& o : result.outcomes) {
      if (!o.error.empty()) {
        std::cerr << "run " << o.index << " (" << o.label << ") failed: " << o.error << "\n";
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cohesion_run: " << e.what() << "\n";
    return 1;
  }
}
