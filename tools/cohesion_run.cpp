// cohesion_run — declarative batch driver: load an experiment spec (JSON),
// fan it out over a worker pool, emit an aggregated report. With --shard it
// executes one deterministic slice of the grid for multi-process sweeps;
// with --checkpoint/--resume it journals outcomes so a killed batch
// continues where it left off (see docs/operations.md for the runbook).
//
//   cohesion_run sweep.json                        # run, report to stdout
//   cohesion_run sweep.json --threads 8            # parallel across runs
//   cohesion_run sweep.json --out report.json      # write report to a file
//   cohesion_run sweep.json --no-timing            # deterministic output
//                                                  # (diffable across thread
//                                                  #  counts)
//   cohesion_run sweep.json --shard 0/3 --out p0.json
//                                                  # one shard; partial
//                                                  # report for cohesion_merge
//   cohesion_run sweep.json --checkpoint run.ckpt  # journal outcomes (JSONL)
//   cohesion_run sweep.json --resume run.ckpt      # skip completed runs
//   cohesion_run sweep.json --fsync-every 16       # journal fsync cadence
//   cohesion_run sweep.json --trace-dir traces/    # stream every run's
//                                                  # activations to
//                                                  # traces/run_<index>.cohtrace
//                                                  # (bounded-memory mode;
//                                                  #  replay with
//                                                  #  cohesion_replay)
//   cohesion_run sweep.json --peak-rss             # report peak RSS (KB) on
//                                                  # stderr after the batch
//   cohesion_run sweep.json --cache DIR            # content-addressed result
//                                                  # cache: unchanged runs are
//                                                  # served from DIR, new
//                                                  # outcomes inserted (safe to
//                                                  # share across concurrent
//                                                  # shard workers)
//   cohesion_run sweep.json --cache DIR --cache-readonly   # hits only
//   cohesion_run sweep.json --no-cache             # ignore --cache and
//                                                  # $COHESION_CACHE_DIR
//   cohesion_run --list                            # registry keys
//
// The spec is either a full ExperimentSpec ({"base": {...}, "sweep": [...],
// "repeats": N}) or a bare RunSpec object, which runs once; either may
// layer over other spec files with "extends" (resolved before anything is
// fingerprinted — docs/experiments.md). $COHESION_CACHE_DIR supplies the
// cache directory when --cache is absent. Spec schema and seed-derivation
// rules: docs/experiments.md; sharding/resume contracts, cache keying and
// file formats: docs/operations.md.
//
// Exit codes (the taxonomy supervisors retry by — docs/experiments.md):
//   0  every run executed without error, report written
//   1  permanent failure: bad spec, unknown registry key, stale/corrupt
//      checkpoint — retrying the same invocation fails the same way
//   2  bad usage
//   3  transient failure: I/O (unreadable spec file, journal write,
//      unwritable --out) — retrying may succeed
//   4  interrupted by SIGTERM/SIGINT: the checkpoint journal is flushed
//      and well-formed; rerun with --resume to continue
#include <signal.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "run/batch_runner.hpp"
#include "run/exit_codes.hpp"
#include "run/preset.hpp"
#include "run/registry.hpp"
#include "run/result_cache.hpp"
#include "run/shard.hpp"

using namespace cohesion;

namespace {

// Graceful shutdown: the handler only raises a flag; BatchRunner checks it
// between runs, so no outcome (or journal line) is ever torn by a signal —
// the journal tail stays a crash artifact, never a cancellation artifact.
std::atomic<bool> g_interrupted{false};

void install_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = [](int) { g_interrupted.store(true); };
  sa.sa_flags = SA_RESTART;  // don't turn journal writes into EINTR spam
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

int list_registries() {
  const auto print = [](const char* kind, const std::vector<std::string>& keys) {
    std::cout << kind << ":";
    for (const std::string& k : keys) std::cout << ' ' << k;
    std::cout << '\n';
  };
  print("algorithms", run::algorithms().keys());
  print("schedulers", run::schedulers().keys());
  print("errors", run::errors().keys());
  print("initials", run::initials().keys());
  return 0;
}

int usage(int code) {
  std::cout << "usage: cohesion_run <spec.json> [--threads N] [--out FILE] [--no-timing]\n"
               "                    [--shard I/N] [--checkpoint FILE | --resume FILE]\n"
               "                    [--fsync-every N] [--throttle-ms N]\n"
               "                    [--trace-dir DIR] [--peak-rss]\n"
               "                    [--cache DIR] [--cache-readonly] [--no-cache]\n"
               "       cohesion_run --list\n";
  return code;
}

/// Peak resident set size in KB (Linux ru_maxrss unit), for the
/// bounded-memory assertions in bench/run_benches.sh.
long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  std::string shard_arg;
  std::string trace_dir;
  std::string cache_dir;
  bool cache_readonly = false;
  bool no_cache = false;
  run::BatchRunner::Options options;
  options.threads = 1;
  bool timing = true;
  bool report_rss = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") return list_registries();
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--no-timing") {
      timing = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      try {
        options.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "bad --threads value: " << argv[i] << "\n";
        return usage(2);
      }
    } else if (arg == "--fsync-every" && i + 1 < argc) {
      try {
        options.checkpoint_fsync_every = static_cast<std::size_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "bad --fsync-every value: " << argv[i] << "\n";
        return usage(2);
      }
    } else if (arg == "--throttle-ms" && i + 1 < argc) {
      // Fault-harness pacing: sleep after every run so a supervisor's
      // journal poller sees a steady line cadence. Not for real sweeps.
      try {
        options.post_run_delay_ms = static_cast<std::size_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "bad --throttle-ms value: " << argv[i] << "\n";
        return usage(2);
      }
    } else if (arg == "--shard" && i + 1 < argc) {
      shard_arg = argv[++i];
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      if (!options.checkpoint_path.empty()) {
        // Mutually exclusive: --checkpoint would O_TRUNC the very journal
        // --resume is trying to continue from.
        std::cerr << "--checkpoint and --resume cannot be combined (--resume already "
                     "journals to its file)\n";
        return usage(2);
      }
      options.checkpoint_path = argv[++i];
      options.resume = false;
    } else if (arg == "--resume" && i + 1 < argc) {
      if (!options.checkpoint_path.empty()) {
        std::cerr << "--checkpoint and --resume cannot be combined (--resume already "
                     "journals to its file)\n";
        return usage(2);
      }
      options.checkpoint_path = argv[++i];
      options.resume = true;
    } else if (arg == "--trace-dir" && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--cache-readonly") {
      cache_readonly = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--peak-rss") {
      report_rss = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (spec_path.empty() && !arg.starts_with("--")) {
      spec_path = arg;
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (spec_path.empty()) return usage(2);
  install_stop_handlers();
  options.cancel = &g_interrupted;

  // --cache wins over the environment default; --no-cache beats both (the
  // escape hatch when a wrapper or $COHESION_CACHE_DIR injects a cache).
  if (cache_dir.empty()) {
    if (const char* env = std::getenv("COHESION_CACHE_DIR")) cache_dir = env;
  }
  if (no_cache) cache_dir.clear();

  try {
    {
      // Distinguish the unreadable file (transient: not copied yet, NFS
      // hiccup) from the unparseable one (permanent) before parsing.
      std::ifstream probe(spec_path);
      if (!probe) throw run::TransientError("cannot open spec file " + spec_path);
    }
    // Preset layering ("extends") resolves here — before expansion, and
    // therefore before any fingerprint (checkpoint or cache) is computed.
    const run::Json doc = run::load_spec_file(spec_path);
    // A bare RunSpec (no "base") runs as a one-run experiment.
    run::ExperimentSpec experiment;
    if (doc.contains("base")) {
      experiment = run::ExperimentSpec::from_json(doc);
    } else {
      experiment.base = run::RunSpec::from_json(doc);
      experiment.name = experiment.base.name;
    }

    if (!trace_dir.empty()) {
      // Force bounded-memory streaming: every run writes its activation
      // stream under the directory, keyed by global grid index (the path
      // template resolves per run at expansion time).
      std::error_code ec;
      std::filesystem::create_directories(trace_dir, ec);
      if (ec) throw run::TransientError("cannot create --trace-dir " + trace_dir);
      experiment.base.trace.mode = "stream";
      experiment.base.trace.path = trace_dir + "/run_{index}.cohtrace";
    }

    std::optional<run::ResultCache> cache;
    if (!cache_dir.empty()) {
      cache.emplace(run::ResultCache::Options{.dir = cache_dir, .read_only = cache_readonly});
      options.cache = &*cache;
    }

    run::Shard shard;
    std::vector<run::ExpandedRun> runs;
    // Grid size without expanding: variants x repeats (expand()'s shape).
    const std::size_t total_runs =
        experiment.variant_count() * std::max<std::size_t>(experiment.repeats, 1);
    if (shard_arg.empty()) {
      runs = experiment.expand();
    } else {
      shard = run::Shard::parse(shard_arg);
      runs = experiment.expand_shard(shard.index, shard.count);
    }

    const run::BatchResult result = run::BatchRunner(options).run(runs, experiment.early_stop);
    if (result.interrupted) {
      // No report: it would describe a truncated batch. The journal (if
      // any) is flushed and well-formed — --resume picks up exactly here.
      std::cerr << "cohesion_run: interrupted (SIGTERM/SIGINT) after " << result.outcomes.size()
                << " runs"
                << (options.checkpoint_path.empty()
                        ? ""
                        : "; journal flushed — rerun with --resume " + options.checkpoint_path)
                << "\n";
      return run::kExitInterrupted;
    }
    // A shard emits a partial report — always deterministic (no timing
    // block; wall numbers go to stderr) so partials diff across machines.
    run::Json report =
        shard_arg.empty()
            ? run::BatchRunner::report_json(experiment, result, timing)
            : run::partial_report_json(experiment, shard, total_runs, result.outcomes);

    if (cache) {
      // Hit/miss traffic is wall-clock-class information: it lands in the
      // timing block (and stderr), never in the deterministic report — a
      // warm --no-timing report must stay byte-identical to a cold one.
      const run::CacheStats stats = cache->stats();
      if (run::Json* t = report.find("timing")) t->set("cache", stats.to_json());
      for (const std::string& cause : cache->reject_causes()) {
        std::cerr << "cache reject: " << cause << "\n";
      }
      std::cerr << "cache: " << stats.hits << " hits, " << stats.misses << " misses, "
                << stats.rejects << " rejects, " << stats.inserts << " inserts";
      if (stats.bypassed > 0) std::cerr << ", " << stats.bypassed << " bypassed (stream mode)";
      std::cerr << " (" << cache_dir << ")\n";
    }

    if (out_path.empty()) {
      std::cout << report.dump(2) << '\n';
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return run::kExitTransient;
      }
      out << report.dump(2) << '\n';
      std::cerr << "report written: " << out_path << " (" << result.outcomes.size() << " runs, "
                << result.threads << " threads, " << result.wall_seconds << " s)\n";
    }

    // One machine-greppable line; ru_maxrss covers the whole process, which
    // is exactly what a bounded-memory claim must bound.
    if (report_rss) std::cerr << "peak_rss_kb: " << peak_rss_kb() << "\n";

    for (const run::RunOutcome& o : result.outcomes) {
      if (!o.error.empty()) {
        std::cerr << "run " << o.index << " (" << o.label << ") failed: " << o.error << "\n";
        return run::kExitPermanent;
      }
    }
    return run::kExitSuccess;
  } catch (const run::TransientError& e) {
    std::cerr << "cohesion_run: " << e.what() << " (transient — retrying may succeed)\n";
    return run::kExitTransient;
  } catch (const std::exception& e) {
    std::cerr << "cohesion_run: " << e.what() << "\n";
    return run::kExitPermanent;
  }
}
