#!/usr/bin/env bash
# Docs-freshness gate: fails when the documentation set has rotted behind
# the tree. Specifically:
#
#   * every src/<subsystem>/ directory must be mentioned in
#     docs/architecture.md  (as "src/<subsystem>");
#   * every bench/bench_*.cpp must be mentioned by filename in
#     docs/benchmarks.md;
#   * the core documentation set (README.md, docs/architecture.md,
#     docs/benchmarks.md, docs/experiments.md) must exist and README.md
#     must link every docs/ file.
#
# Run from anywhere; wired into bench/run_benches.sh and registered as the
# `docs_check` ctest test so CI fails on rot.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
complain() {
  echo "check_docs: $*" >&2
  fail=1
}

for doc in README.md docs/architecture.md docs/benchmarks.md docs/experiments.md; do
  [ -f "$doc" ] || complain "missing $doc"
done
[ "$fail" = 0 ] || exit 1

for dir in src/*/; do
  sub=${dir%/}
  grep -q "$sub" docs/architecture.md ||
    complain "docs/architecture.md does not mention subsystem $sub"
done

for bench in bench/bench_*.cpp; do
  name=$(basename "$bench")
  grep -q "$name" docs/benchmarks.md ||
    complain "docs/benchmarks.md does not mention $name"
done

for doc in docs/*.md; do
  name=$(basename "$doc")
  grep -q "$name" README.md ||
    complain "README.md does not link docs/$name"
done

if [ "$fail" = 0 ]; then
  echo "check_docs: OK (src subsystems, bench files and doc links all covered)"
fi
exit "$fail"
