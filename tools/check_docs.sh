#!/usr/bin/env bash
# Docs-freshness gate: fails when the documentation set has rotted behind
# the tree. Specifically:
#
#   * every src/<subsystem>/ directory must be mentioned in
#     docs/architecture.md  (as "src/<subsystem>");
#   * every bench/bench_*.cpp must be mentioned by filename in
#     docs/benchmarks.md;
#   * every tools/*.cpp CLI tool must be mentioned by name in README.md
#     and in docs/operations.md (the ops runbook covers every binary an
#     operator can invoke);
#   * the operator-facing cohesion_run/cohesion_merge flags and the
#     spec-level batch fields must be documented where they belong
#     (docs/operations.md for the run/ops flags, docs/experiments.md for
#     spec schema fields) — greps below, extend when adding flags;
#   * the core documentation set (README.md, docs/architecture.md,
#     docs/benchmarks.md, docs/experiments.md, docs/operations.md) must
#     exist and README.md must link every docs/ file.
#
# Run from anywhere; wired into bench/run_benches.sh and registered as the
# `docs_check` ctest test so CI fails on rot.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
complain() {
  echo "check_docs: $*" >&2
  fail=1
}

for doc in README.md docs/architecture.md docs/benchmarks.md docs/experiments.md \
           docs/operations.md; do
  [ -f "$doc" ] || complain "missing $doc"
done
[ "$fail" = 0 ] || exit 1

for dir in src/*/; do
  sub=${dir%/}
  grep -q "$sub" docs/architecture.md ||
    complain "docs/architecture.md does not mention subsystem $sub"
done

for bench in bench/bench_*.cpp; do
  name=$(basename "$bench")
  grep -q "$name" docs/benchmarks.md ||
    complain "docs/benchmarks.md does not mention $name"
done

for tool in tools/*.cpp; do
  name=$(basename "$tool" .cpp)
  grep -q "$name" README.md ||
    complain "README.md does not mention tool $name"
  grep -q "$name" docs/operations.md ||
    complain "docs/operations.md does not mention tool $name"
done

# Operator-facing CLI flags: documented in the runbook.
for flag in --shard --checkpoint --resume --fsync-every --threads --out --no-timing \
            --trace-dir --peak-rss --cache --cache-readonly --no-cache; do
  grep -q -- "$flag" docs/operations.md ||
    complain "docs/operations.md does not document cohesion_run $flag"
done
grep -q COHESION_CACHE_DIR docs/operations.md ||
  complain "docs/operations.md does not document \$COHESION_CACHE_DIR"

# Replay-tool (cohesion_replay) flags: same rule.
for flag in --check --expect-fingerprint --info --svg; do
  grep -q -- "$flag" docs/operations.md ||
    complain "docs/operations.md does not document cohesion_replay $flag"
done

# Supervisor (cohesion_launch) flags: same rule.
for flag in --shards --fault --lease-timeout --max-attempts --backoff-base --throttle-ms \
            --max-parallel --work-dir; do
  grep -q -- "$flag" docs/operations.md ||
    complain "docs/operations.md does not document cohesion_launch $flag"
done

# Work-queue daemon (cohesion_serve) flags: same rule. (--lease-timeout,
# --max-attempts, --backoff-*, --work-dir, --throttle-ms are shared with
# cohesion_launch and gated above.)
for flag in --listen --worker --submit --status --shutdown --ledger --poll-interval \
            --status-interval --jitter-seed --runner --connect-attempts --connect-backoff \
            --oneshot --wait; do
  grep -q -- "$flag" docs/operations.md ||
    complain "docs/operations.md does not document cohesion_serve $flag"
done

# The serve on-disk/degraded formats and the container recipe: runbook.
for phrase in cohesion-serve-ledger/1 cohesion-supervised-partial/1 docker-compose.yml; do
  grep -q "$phrase" docs/operations.md ||
    complain "docs/operations.md does not cover $phrase"
done

# Spec-level schema fields: documented with the rest of the spec schema.
for field in early_stop max_time incremental_index use_spatial_index soa_kernel \
             trace flush_every index_every extends; do
  grep -q "$field" docs/experiments.md ||
    complain "docs/experiments.md does not document spec field $field"
done

# The run/ops determinism contracts live in the architecture doc.
for phrase in shard-union resume fault-tolerance "streamed metrics" \
              "cached outcome ≡ recomputed outcome" \
              "SoA snapshot ≡ scalar snapshot" \
              "byte-identical across any partition history"; do
  grep -qi "$phrase" docs/architecture.md ||
    complain "docs/architecture.md does not state the $phrase determinism contract"
done

# The SoA build toggle and its certification driver: benchmarks doc covers
# the native A/B knob, architecture doc names the enforcing ctest test.
grep -q "COHESION_NATIVE" docs/benchmarks.md docs/architecture.md ||
  complain "docs do not mention the COHESION_NATIVE build toggle"
grep -q "soa_certification" docs/architecture.md ||
  complain "docs/architecture.md does not name the soa_certification ctest test"

# The trace-file format spec lives in the runbook.
for phrase in COHTRACE cohtrace torn; do
  grep -q "$phrase" docs/operations.md ||
    complain "docs/operations.md does not cover the trace-file format ($phrase)"
done

for doc in docs/*.md; do
  name=$(basename "$doc")
  grep -q "$name" README.md ||
    complain "README.md does not link docs/$name"
done

if [ "$fail" = 0 ]; then
  echo "check_docs: OK (src subsystems, bench files, tools, CLI flags, spec fields and doc links all covered)"
fi
exit "$fail"
