// cohesion_serve — fault-tolerant sweep work-queue: a daemon that accepts
// experiment specs as jobs and leases shards to connecting workers, with
// checkpoint-journal heartbeats, RetryPolicy backoff on dead leases,
// elastic re-partitioning when workers join or die, and an append-only job
// ledger so a daemon restart resumes every in-flight job. The final report
// of a served sweep is byte-identical to the single-process
// `cohesion_run spec.json --no-timing` report (architecture contract 13);
// a sweep that exhausts its retry budget degrades to an explicit
// cohesion-supervised-partial/1 document instead of a silent wrong answer.
//
//   cohesion_serve --listen unix:/tmp/serve.sock            # daemon
//   cohesion_serve --listen 0.0.0.0:7077 --ledger jobs.ledger
//   cohesion_serve --worker unix:/tmp/serve.sock            # join as worker
//   cohesion_serve --worker daemon-host:7077 --threads 4
//   cohesion_serve --submit sweep.json unix:/tmp/serve.sock # enqueue, print id
//   cohesion_serve --submit sweep.json HOST:PORT --wait --out report.json
//   cohesion_serve --status unix:/tmp/serve.sock            # job table JSON
//   cohesion_serve --shutdown unix:/tmp/serve.sock          # graceful stop
//
// Daemon flags: --ledger FILE --lease-timeout S --poll-interval S
//               --status-interval S --max-attempts K --backoff-base S
//               --backoff-max S --jitter F --jitter-seed N
// Worker flags: --work-dir DIR --runner PATH --threads N --throttle-ms N
//               --connect-attempts N --connect-backoff S --oneshot --name S
// Submit flags: --wait [--out FILE] (poll until the job is terminal, write
//               its report, exit with the job's exit code; reconnects
//               across daemon restarts — job ids are ledger-stable)
//
// Exit codes (run/exit_codes.hpp): 0 ok; 1 permanent (failed job, bad
// spec); 2 usage; 3 transient I/O; 4 interrupted by SIGTERM/SIGINT with
// ledger/journal flushed — a restart resumes; 5 transient network (daemon
// unreachable after --connect-attempts retries — relaunching may fix it).
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "run/exit_codes.hpp"
#include "run/preset.hpp"
#include "run/spec.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/worker.hpp"

using namespace cohesion;

namespace {

std::atomic<bool> g_interrupted{false};

void install_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = [](int) { g_interrupted.store(true); };
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // A peer that vanishes mid-send must surface as EPIPE, not kill us.
  signal(SIGPIPE, SIG_IGN);
}

int usage(int code) {
  std::cout
      << "usage: cohesion_serve --listen ADDR [--ledger FILE] [--lease-timeout S]\n"
         "                      [--poll-interval S] [--status-interval S]\n"
         "                      [--max-attempts K] [--backoff-base S] [--backoff-max S]\n"
         "                      [--jitter F] [--jitter-seed N] [--quiet]\n"
         "       cohesion_serve --worker ADDR [--work-dir DIR] [--runner PATH]\n"
         "                      [--threads N] [--throttle-ms N] [--connect-attempts N]\n"
         "                      [--connect-backoff S] [--oneshot] [--name S] [--quiet]\n"
         "       cohesion_serve --submit SPEC ADDR [--wait] [--out FILE] [--name S]\n"
         "       cohesion_serve --status ADDR\n"
         "       cohesion_serve --shutdown ADDR\n"
         "ADDR is unix:PATH or HOST:PORT.\n";
  return code;
}

/// One-request client connection, with connect retry under backoff so
/// submit --wait survives daemon restarts.
serve::LineConnection connect_client(const serve::Address& address, std::size_t attempts,
                                     double backoff) {
  double delay = backoff;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return serve::LineConnection(serve::connect_to(address, 10.0));
    } catch (const run::TransientNetworkError&) {
      if (attempt >= attempts || g_interrupted.load()) throw;
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      delay = std::min(delay * 2.0, 5.0);
    }
  }
}

run::Json transact_once(const serve::Address& address, const run::Json& request,
                        std::size_t attempts = 1, double backoff = 0.25) {
  serve::LineConnection conn = connect_client(address, attempts, backoff);
  conn.send(request);
  auto reply = conn.receive();
  if (!reply) throw run::TransientNetworkError("daemon closed the connection");
  if (!reply->bool_or("ok", false)) {
    throw std::runtime_error("daemon error: " + reply->string_or("error", "unspecified"));
  }
  return std::move(*reply);
}

/// Load a spec exactly like cohesion_run: resolve "extends" layering, wrap
/// a bare RunSpec. The resolved ExperimentSpec echo is what crosses the
/// wire — its JSON round trip is exact, so the daemon-side report is
/// byte-identical to the single-process one (contract 13).
run::Json resolve_spec(const std::string& path) {
  {
    std::ifstream probe(path);
    if (!probe) throw run::TransientError("cannot open spec file " + path);
  }
  const run::Json doc = run::load_spec_file(path);
  run::ExperimentSpec experiment;
  if (doc.contains("base")) {
    experiment = run::ExperimentSpec::from_json(doc);
  } else {
    experiment.base = run::RunSpec::from_json(doc);
    experiment.name = experiment.base.name;
  }
  return experiment.to_json();
}

int submit(const serve::Address& address, const std::string& spec_path,
           const std::string& name, bool wait, const std::string& out_path) {
  run::Json request = run::Json::object();
  request.set("op", "submit");
  request.set("name", name);
  request.set("spec", resolve_spec(spec_path));
  const run::Json reply = transact_once(address, request, 10, 0.25);
  const std::uint64_t job = reply.uint_or("job", 0);
  std::cerr << "cohesion_serve: submitted job " << job << "\n";
  if (!wait) {
    std::cout << job << "\n";
    return run::kExitSuccess;
  }

  // Poll with a fresh connection each time: a daemon restart mid-job only
  // costs us a few connect retries — the ledger keeps job ids stable.
  for (;;) {
    if (g_interrupted.load()) return run::kExitInterrupted;
    run::Json poll = run::Json::object();
    poll.set("op", "report");
    poll.set("job", job);
    run::Json status;
    try {
      status = transact_once(address, poll, 20, 0.25);
    } catch (const run::TransientNetworkError& e) {
      std::cerr << "cohesion_serve: " << e.what() << " (daemon unreachable)\n";
      return run::kExitTransientNetwork;
    }
    const std::string state = status.string_or("state", "");
    if (state == "running") {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      continue;
    }
    const run::Json& report = status.at("report");
    if (out_path.empty()) {
      std::cout << report.dump(2) << '\n';
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return run::kExitTransient;
      }
      out << report.dump(2) << '\n';
      std::cerr << "cohesion_serve: report written: " << out_path << " (job " << job << " "
                << state << ")\n";
    }
    return static_cast<int>(status.uint_or("exit_code", run::kExitPermanent));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::string address_arg;
  std::string spec_path;
  std::string out_path;
  std::string name;
  bool wait = false;
  bool quiet = false;
  serve::DaemonOptions daemon;
  serve::WorkerOptions worker;

  const auto numeric = [&](const char* flag, const std::string& value, auto& into) -> bool {
    try {
      if constexpr (std::is_floating_point_v<std::decay_t<decltype(into)>>) {
        into = std::stod(value);
      } else {
        into = static_cast<std::decay_t<decltype(into)>>(std::stoull(value));
      }
      return true;
    } catch (const std::exception&) {
      std::cerr << "bad " << flag << " value: " << value << "\n";
      return false;
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](std::string& into) -> bool {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return false;
      }
      into = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--listen" || arg == "--worker" || arg == "--status" || arg == "--shutdown") {
      mode = arg.substr(2);
      if (!take(address_arg)) return usage(2);
    } else if (arg == "--submit") {
      mode = "submit";
      if (!take(spec_path)) return usage(2);
      if (i + 1 >= argc || std::string(argv[i + 1]).starts_with("--")) {
        std::cerr << "--submit needs SPEC and ADDR\n";
        return usage(2);
      }
      address_arg = argv[++i];
    } else if (arg == "--ledger") {
      if (!take(daemon.ledger_path)) return usage(2);
    } else if (arg == "--lease-timeout") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.config.lease_timeout_seconds))
        return usage(2);
    } else if (arg == "--poll-interval") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.poll_interval_seconds))
        return usage(2);
    } else if (arg == "--status-interval") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.status_interval_seconds))
        return usage(2);
    } else if (arg == "--max-attempts") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.config.retry.max_attempts))
        return usage(2);
    } else if (arg == "--backoff-base") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.config.retry.base_delay_seconds))
        return usage(2);
    } else if (arg == "--backoff-max") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.config.retry.max_delay_seconds))
        return usage(2);
    } else if (arg == "--jitter") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.config.retry.jitter))
        return usage(2);
    } else if (arg == "--jitter-seed") {
      if (!take(value) || !numeric(arg.c_str(), value, daemon.config.retry.jitter_seed))
        return usage(2);
    } else if (arg == "--work-dir") {
      if (!take(worker.work_dir)) return usage(2);
    } else if (arg == "--runner") {
      if (!take(worker.runner)) return usage(2);
    } else if (arg == "--threads") {
      if (!take(value) || !numeric(arg.c_str(), value, worker.threads)) return usage(2);
    } else if (arg == "--throttle-ms") {
      if (!take(value) || !numeric(arg.c_str(), value, worker.throttle_ms)) return usage(2);
    } else if (arg == "--connect-attempts") {
      if (!take(value) || !numeric(arg.c_str(), value, worker.connect_attempts))
        return usage(2);
    } else if (arg == "--connect-backoff") {
      if (!take(value) || !numeric(arg.c_str(), value, worker.connect_backoff_seconds))
        return usage(2);
    } else if (arg == "--oneshot") {
      worker.oneshot = true;
    } else if (arg == "--name") {
      if (!take(name)) return usage(2);
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--out") {
      if (!take(out_path)) return usage(2);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (mode.empty()) return usage(2);
  install_stop_handlers();

  try {
    const serve::Address address = serve::Address::parse(address_arg);
    if (mode == "listen") {
      daemon.address = address;
      daemon.stop = &g_interrupted;
      if (!quiet) {
        daemon.on_event = [](const std::string& line) {
          std::cerr << "[cohesion_serve] " << line << "\n";
        };
      }
      return serve::run_daemon(daemon);
    }
    if (mode == "worker") {
      worker.address = address;
      worker.name = name;
      worker.stop = &g_interrupted;
      if (!quiet) {
        worker.on_event = [](const std::string& line) {
          std::cerr << "[cohesion_serve:worker] " << line << "\n";
        };
      }
      return serve::run_worker(worker);
    }
    if (mode == "submit") return submit(address, spec_path, name, wait, out_path);
    if (mode == "status") {
      run::Json request = run::Json::object();
      request.set("op", "status");
      std::cout << transact_once(address, request).at("status").dump(2) << '\n';
      return run::kExitSuccess;
    }
    if (mode == "shutdown") {
      run::Json request = run::Json::object();
      request.set("op", "shutdown");
      (void)transact_once(address, request);
      std::cerr << "cohesion_serve: shutdown requested\n";
      return run::kExitSuccess;
    }
    return usage(2);
  } catch (const run::TransientNetworkError& e) {
    std::cerr << "cohesion_serve: " << e.what()
              << " (transient network — the daemon may be down or restarting; retrying "
                 "may succeed)\n";
    return run::kExitTransientNetwork;
  } catch (const run::TransientError& e) {
    std::cerr << "cohesion_serve: " << e.what() << " (transient — retrying may succeed)\n";
    return run::kExitTransient;
  } catch (const std::exception& e) {
    std::cerr << "cohesion_serve: " << e.what() << "\n";
    return run::kExitPermanent;
  }
}
