// cohesion_replay — consume a binary activation stream (written by
// cohesion_run --trace-dir or a trace.mode="stream" spec) without the
// producing process: recompute the run's convergence metrics, verify them
// against a batch report, inspect the file, or render an SVG timeline.
//
//   cohesion_replay run_0.cohtrace                 # recompute metrics (JSON
//                                                  # on stdout)
//   cohesion_replay run_0.cohtrace --check report.json
//                                                  # byte-compare recomputed
//                                                  # metrics against the
//                                                  # matching run outcome
//   cohesion_replay run_0.cohtrace --expect-fingerprint <hex16>
//                                                  # refuse a stream from a
//                                                  # different resolved spec
//   cohesion_replay run_0.cohtrace --info          # header/footer summary,
//                                                  # no metric recompute
//   cohesion_replay run_0.cohtrace --svg out.svg   # activation timeline
//
// Metrics are recomputed by the same single-pass accumulator the run used
// (metrics::ConvergenceAccumulator), so on an untruncated stream the output
// is byte-identical to the producing run's report fields — that is the
// bit-identity contract --check enforces. A truncated stream (crashed
// writer) still replays: the reader yields exactly the committed prefix and
// the output carries "truncated": true.
//
// Exit codes: 0 success (--check: metrics match), 1 permanent failure
// (corrupt stream, fingerprint/version mismatch, --check mismatch), 2 bad
// usage, 3 transient I/O failure (unreadable input, unwritable output).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/online.hpp"
#include "run/exit_codes.hpp"
#include "run/json.hpp"
#include "run/spec.hpp"
#include "trace/stream_reader.hpp"

using namespace cohesion;

namespace {

int usage(int code) {
  std::cout << "usage: cohesion_replay <stream.cohtrace> [--check report.json]\n"
               "                       [--expect-fingerprint HEX] [--info] [--svg FILE]\n"
               "                       [--out FILE]\n";
  return code;
}

/// Replay every committed record through the online accumulator.
struct Replayed {
  metrics::ConvergenceReport report;
  std::uint64_t records = 0;
  core::Time end_time = 0.0;
  bool truncated = false;
};

Replayed replay_metrics(trace::StreamTraceReader& reader) {
  metrics::ConvergenceAccumulator acc(reader.header().initial, reader.header().visibility_radius,
                                      reader.header().stop_epsilon);
  core::ActivationRecord rec;
  while (reader.next(rec)) acc.add(rec);
  Replayed out;
  out.records = reader.records_read();
  out.end_time = reader.end_time();
  out.truncated = reader.truncated();
  out.report = acc.finish();
  return out;
}

/// The outcome fields a batch report stores for a run, in report order —
/// shared by the replay output and the --check comparison so equality is a
/// byte-level statement about the same serialization.
run::Json report_fields_json(const metrics::ConvergenceReport& rep) {
  run::Json j = run::Json::object();
  j.set("converged", rep.converged);
  j.set("cohesive", rep.cohesive);
  j.set("initial_diameter", rep.initial_diameter);
  j.set("final_diameter", rep.final_diameter);
  j.set("rounds", rep.rounds);
  j.set("rounds_to_halve", rep.rounds_to_halve);
  j.set("activations", rep.activations);
  j.set("worst_stretch", rep.worst_stretch);
  return j;
}

/// Basename comparison lets a report produced in another directory match.
std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int check_against_report(const std::string& report_path, const std::string& stream_path,
                         const std::string& fingerprint_hex, const run::Json& recomputed) {
  {
    std::ifstream probe(report_path);
    if (!probe) {
      std::cerr << "cohesion_replay: cannot open report " << report_path << "\n";
      return run::kExitTransient;
    }
  }
  const run::Json report = run::Json::parse_file(report_path);
  const run::Json* runs = report.find("runs");
  if (!runs) {
    std::cerr << "cohesion_replay: " << report_path
              << " has no \"runs\" array — not a cohesion_run report\n";
    return run::kExitPermanent;
  }
  const run::Json* match = nullptr;
  for (const run::Json& r : runs->items()) {
    const run::Json* fp = r.find("trace_fingerprint");
    const run::Json* path = r.find("trace_path");
    if (!fp || !path) continue;
    if (fp->as_string() != fingerprint_hex) continue;
    if (basename_of(path->as_string()) != basename_of(stream_path)) continue;
    match = &r;
    break;
  }
  if (!match) {
    std::cerr << "cohesion_replay: no run in " << report_path << " carries trace_path "
              << basename_of(stream_path) << " with fingerprint " << fingerprint_hex
              << " — wrong report, or the run was not executed in stream mode\n";
    return run::kExitPermanent;
  }
  bool ok = true;
  for (const auto& [key, value] : recomputed.entries()) {
    const run::Json* stored = match->find(key);
    const std::string replayed = value.dump();
    const std::string reported = stored ? stored->dump() : "<missing>";
    if (replayed != reported) {
      std::cerr << "mismatch on \"" << key << "\": replayed " << replayed << ", report says "
                << reported << "\n";
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "cohesion_replay: recomputed metrics DIVERGE from " << report_path << "\n";
    return run::kExitPermanent;
  }
  std::cout << "ok: replayed metrics byte-match run " << match->at("index").dump() << " in "
            << report_path << "\n";
  return run::kExitSuccess;
}

/// Activation timeline: one row per robot, one bar per activation from
/// t_look to t_move_end (the activity interval). Readable up to a few
/// thousand records; beyond kMaxBars the densest rows win nothing, so the
/// tool thins uniformly and says so in the footer.
int render_svg(trace::StreamTraceReader& reader, const std::string& out_path) {
  constexpr std::size_t kMaxBars = 20000;
  struct Bar {
    std::size_t robot;
    double start, mid, end;
  };
  std::vector<Bar> bars;
  core::ActivationRecord rec;
  while (reader.next(rec)) {
    bars.push_back({rec.activation.robot, rec.activation.t_look, rec.activation.t_move_start,
                    rec.activation.t_move_end});
  }
  const std::size_t total = bars.size();
  std::size_t stride = 1;
  if (total > kMaxBars) {
    stride = (total + kMaxBars - 1) / kMaxBars;
    std::vector<Bar> thinned;
    thinned.reserve(total / stride + 1);
    for (std::size_t i = 0; i < total; i += stride) thinned.push_back(bars[i]);
    bars = std::move(thinned);
  }
  const std::size_t n = reader.header().initial.size();
  const double t_max = std::max(reader.end_time(), 1e-9);

  const double width = 1200.0, row_h = std::max(2.0, std::min(16.0, 700.0 / std::max<std::size_t>(n, 1)));
  const double height = row_h * static_cast<double>(n) + 40.0;
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cohesion_replay: cannot write " << out_path << "\n";
    return run::kExitTransient;
  }
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\"" << height
      << "\" viewBox=\"0 0 " << width << " " << height << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  const auto x_of = [&](double t) { return 10.0 + (width - 20.0) * (t / t_max); };
  for (const Bar& b : bars) {
    const double y = 10.0 + row_h * static_cast<double>(b.robot) + row_h * 0.15;
    // Compute phase (look -> move start) in light blue, move in dark blue.
    out << "<rect x=\"" << x_of(b.start) << "\" y=\"" << y << "\" width=\""
        << std::max(0.2, x_of(b.mid) - x_of(b.start)) << "\" height=\"" << row_h * 0.7
        << "\" fill=\"#9ecae1\"/>\n";
    out << "<rect x=\"" << x_of(b.mid) << "\" y=\"" << y << "\" width=\""
        << std::max(0.2, x_of(b.end) - x_of(b.mid)) << "\" height=\"" << row_h * 0.7
        << "\" fill=\"#3182bd\"/>\n";
  }
  out << "<text x=\"10\" y=\"" << height - 12.0 << "\" font-family=\"monospace\" font-size=\"12\">"
      << total << " activations, " << n << " robots, t_end=" << reader.end_time()
      << (stride > 1 ? " (every " + std::to_string(stride) + "th shown)" : "")
      << (reader.truncated() ? " [truncated stream]" : "") << "</text>\n</svg>\n";
  if (!out) {
    std::cerr << "cohesion_replay: writing " << out_path << " failed\n";
    return run::kExitTransient;
  }
  std::cerr << "svg written: " << out_path << " (" << bars.size() << " bars)\n";
  return run::kExitSuccess;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stream_path;
  std::string check_path;
  std::string svg_path;
  std::string out_path;
  std::string expect_fp;
  bool info = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--svg" && i + 1 < argc) {
      svg_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--expect-fingerprint" && i + 1 < argc) {
      expect_fp = argv[++i];
    } else if (arg == "--info") {
      info = true;
    } else if (stream_path.empty() && !arg.starts_with("--")) {
      stream_path = arg;
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (stream_path.empty()) return usage(2);

  try {
    {
      std::ifstream probe(stream_path);
      if (!probe) {
        std::cerr << "cohesion_replay: cannot open " << stream_path << "\n";
        return run::kExitTransient;
      }
    }
    trace::StreamTraceReader reader(stream_path);
    const std::string fp_hex = run::fingerprint_hex(reader.header().fingerprint);
    if (!expect_fp.empty() && expect_fp != fp_hex) {
      std::cerr << "cohesion_replay: fingerprint mismatch: stream " << stream_path
                << " was recorded by spec " << fp_hex << ", expected " << expect_fp
                << " — this stream belongs to a different resolved run\n";
      return run::kExitPermanent;
    }

    if (info) {
      run::Json j = run::Json::object();
      j.set("path", stream_path);
      j.set("fingerprint", fp_hex);
      j.set("n", reader.header().initial.size());
      j.set("visibility_radius", reader.header().visibility_radius);
      j.set("epsilon", reader.header().stop_epsilon);
      if (const auto footer = trace::StreamTraceReader::read_footer(stream_path)) {
        j.set("closed_cleanly", true);
        j.set("records", footer->total_records);
        j.set("end_time", footer->end_time);
        j.set("indexed", footer->last_index_offset != 0);
      } else {
        // No valid footer: scan forward to count the committed prefix.
        core::ActivationRecord rec;
        while (reader.next(rec)) {
        }
        j.set("closed_cleanly", false);
        j.set("records", reader.records_read());
        j.set("end_time", reader.end_time());
      }
      std::cout << j.dump(2) << '\n';
      return run::kExitSuccess;
    }

    if (!svg_path.empty()) return render_svg(reader, svg_path);

    const Replayed replayed = replay_metrics(reader);
    const run::Json fields = report_fields_json(replayed.report);

    if (!check_path.empty()) {
      if (replayed.truncated) {
        std::cerr << "cohesion_replay: " << stream_path
                  << " is truncated (torn tail) — its committed prefix cannot byte-match a "
                     "complete run's report\n";
        return run::kExitPermanent;
      }
      return check_against_report(check_path, stream_path, fp_hex, fields);
    }

    run::Json j = run::Json::object();
    j.set("path", stream_path);
    j.set("fingerprint", fp_hex);
    j.set("n", reader.header().initial.size());
    j.set("records", replayed.records);
    j.set("end_time", replayed.end_time);
    j.set("truncated", replayed.truncated);
    for (const auto& [k, v] : fields.entries()) j.set(k, v);
    if (out_path.empty()) {
      std::cout << j.dump(2) << '\n';
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cohesion_replay: cannot write " << out_path << "\n";
        return run::kExitTransient;
      }
      out << j.dump(2) << '\n';
      std::cerr << "replay written: " << out_path << "\n";
    }
    return run::kExitSuccess;
  } catch (const std::exception& e) {
    std::cerr << "cohesion_replay: " << e.what() << "\n";
    return run::kExitPermanent;
  }
}
