// cohesion_launch — fault-tolerant sweep supervisor: spawn
// `cohesion_run --shard i/N` workers, watch each shard under a journal
// heartbeat lease, retry dead shards with exponential backoff + seeded
// jitter (resuming their checkpoints so finished runs never recompute),
// and emit either the exact single-process `--no-timing` report (merged,
// byte-identical) or a coverage-annotated partial report naming every
// uncovered shard. Runbook: docs/operations.md.
//
//   cohesion_launch sweep.json --shards 3 --out report.json
//   cohesion_launch sweep.json --shards 8 --threads 2 --max-parallel 4
//   cohesion_launch sweep.json --shards 3 --max-attempts 5 \
//       --backoff-base 1 --backoff-max 60 --lease-timeout 30
//   cohesion_launch sweep.json --shards 3 --fault kill:shard=1,after=3 \
//       --fault stall:shard=0,after=2 --throttle-ms 20     # injection harness
//
// Exit codes: 0 complete + no run errors; 1 incomplete coverage, run
// errors, or a permanent supervisor error; 2 bad usage.
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>

#include "run/exit_codes.hpp"
#include "run/supervisor.hpp"

using namespace cohesion;

namespace {

int usage(int code) {
  std::cout
      << "usage: cohesion_launch <spec.json> --shards N [--out FILE] [--work-dir DIR]\n"
         "                       [--threads N] [--max-parallel N] [--runner PATH]\n"
         "                       [--max-attempts K] [--backoff-base S] [--backoff-max S]\n"
         "                       [--jitter F] [--jitter-seed N] [--lease-timeout S]\n"
         "                       [--poll-interval S] [--status-interval S]\n"
         "                       [--fault KIND:shard=J[,attempt=A][,after=K]]...\n"
         "                       [--throttle-ms N] [--quiet]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  run::SupervisorOptions options;
  options.work_dir = "cohesion_launch.work";
  std::string out_path;
  bool quiet = false;

  const auto numeric = [&](const char* flag, const char* text, auto& target) {
    try {
      if constexpr (std::is_floating_point_v<std::decay_t<decltype(target)>>) {
        target = std::stod(text);
      } else {
        target = static_cast<std::decay_t<decltype(target)>>(std::stoull(text));
      }
      return true;
    } catch (const std::exception&) {
      std::cerr << "bad " << flag << " value: " << text << "\n";
      return false;
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--shards" && next) {
      if (!numeric("--shards", argv[++i], options.shards)) return usage(run::kExitUsage);
    } else if (arg == "--threads" && next) {
      if (!numeric("--threads", argv[++i], options.worker_threads)) return usage(run::kExitUsage);
    } else if (arg == "--max-parallel" && next) {
      if (!numeric("--max-parallel", argv[++i], options.max_parallel)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--max-attempts" && next) {
      if (!numeric("--max-attempts", argv[++i], options.retry.max_attempts)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--backoff-base" && next) {
      if (!numeric("--backoff-base", argv[++i], options.retry.base_delay_seconds)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--backoff-max" && next) {
      if (!numeric("--backoff-max", argv[++i], options.retry.max_delay_seconds)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--jitter" && next) {
      if (!numeric("--jitter", argv[++i], options.retry.jitter)) return usage(run::kExitUsage);
    } else if (arg == "--jitter-seed" && next) {
      if (!numeric("--jitter-seed", argv[++i], options.retry.jitter_seed)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--lease-timeout" && next) {
      if (!numeric("--lease-timeout", argv[++i], options.lease.timeout_seconds)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--poll-interval" && next) {
      if (!numeric("--poll-interval", argv[++i], options.lease.poll_interval_seconds)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--status-interval" && next) {
      if (!numeric("--status-interval", argv[++i], options.lease.status_interval_seconds)) {
        return usage(run::kExitUsage);
      }
    } else if (arg == "--throttle-ms" && next) {
      if (!numeric("--throttle-ms", argv[++i], options.throttle_ms)) return usage(run::kExitUsage);
    } else if (arg == "--fault" && next) {
      try {
        options.faults.push_back(run::FaultPlan::parse(argv[++i]));
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return usage(run::kExitUsage);
      }
    } else if (arg == "--runner" && next) {
      options.runner = argv[++i];
    } else if (arg == "--work-dir" && next) {
      options.work_dir = argv[++i];
    } else if (arg == "--out" && next) {
      out_path = argv[++i];
    } else if (options.spec_path.empty() && !arg.starts_with("--")) {
      options.spec_path = arg;
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      return usage(run::kExitUsage);
    }
  }
  if (options.spec_path.empty() || options.shards == 0) return usage(run::kExitUsage);
  if (!quiet) {
    options.on_event = [](const std::string& line) {
      std::cerr << "[cohesion_launch] " << line << "\n";
    };
  }

  try {
    const run::SupervisorResult result = run::Supervisor(options).run();
    if (out_path.empty()) {
      std::cout << result.report.dump(2) << '\n';
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return run::kExitTransient;
      }
      out << result.report.dump(2) << '\n';
      std::cerr << (result.complete ? "report written: " : "PARTIAL report written: ")
                << out_path << " (" << result.covered_runs << "/" << result.total_runs
                << " runs)\n";
    }
    return result.exit_code;
  } catch (const run::TransientError& e) {
    std::cerr << "cohesion_launch: " << e.what() << " (transient — retrying may succeed)\n";
    return run::kExitTransient;
  } catch (const std::exception& e) {
    std::cerr << "cohesion_launch: " << e.what() << "\n";
    return run::kExitPermanent;
  }
}
