#!/usr/bin/env bash
# SoA certification battery (architecture contract 12): the SoA snapshot
# kernel must be bit-identical to the scalar reference, or the build is
# rejected. This script proves it under the two configurations most likely
# to break bit-identity or memory safety:
#
#   asan    -DCOHESION_SANITIZE=address  — the 500-seed differential fuzz
#           and the pool/filter property tests with every allocation and
#           gather bounds-checked;
#   native  -DCOHESION_NATIVE=ON         — the same suites compiled with
#           -march=native (widest vectors + FMA contraction the host
#           supports), demonstrating the certified-band design is immune
#           to ISA and contraction choices.
#
# Each configuration is a scoped subtree build under $1 (default
# build/soa-cert relative to the repo root) restricted via
# -DCOHESION_SOA_CERT_ONLY=ON to the library plus tests/core/soa_*.cpp, so
# the battery stays cheap enough for tier-1 (the `soa_certification` ctest
# test runs this script). A configuration whose toolchain flags do not work
# on the host (no libasan, cross-compile without native) is skipped with a
# notice — missing tooling must not fail the contract check, a red test
# must.
set -euo pipefail
cd "$(dirname "$0")/.."
root="${1:-build/soa-cert}"

# Keep subtree builds from inheriting a parent generator's environment.
unset MAKEFLAGS CMAKEFLAGS 2>/dev/null || true

probe_flags() {  # probe_flags <name> <extra cmake cache args...>
  # Compile+link a trivial program with the configuration's flags to see
  # whether the host toolchain supports them at all.
  local name="$1"; shift
  local dir="$root/probe-$name"
  mkdir -p "$dir"
  cat > "$dir/probe.cpp" <<'EOF'
int main() { return 0; }
EOF
  local flags=()
  for arg in "$@"; do
    case "$arg" in
      -DCOHESION_SANITIZE=address) flags+=(-fsanitize=address) ;;
      -DCOHESION_NATIVE=ON) flags+=(-march=native) ;;
    esac
  done
  c++ "${flags[@]}" "$dir/probe.cpp" -o "$dir/probe" >/dev/null 2>&1
}

run_config() {  # run_config <name> <extra cmake cache args...>
  local name="$1"; shift
  if ! probe_flags "$name" "$@"; then
    echo "soa-cert: SKIP $name (host toolchain rejects its flags)"
    return 0
  fi
  local dir="$root/$name"
  echo "soa-cert: configure $name"
  cmake -S . -B "$dir" \
        -DCOHESION_SOA_CERT_ONLY=ON \
        -DCOHESION_BUILD_BENCHES=OFF \
        -DCOHESION_BUILD_EXAMPLES=OFF \
        "$@" >/dev/null
  echo "soa-cert: build $name"
  cmake --build "$dir" --target cohesion_tests -j "$(nproc)" >/dev/null
  echo "soa-cert: run $name"
  "$dir/cohesion_tests" --gtest_brief=1
  echo "soa-cert: PASS $name"
}

run_config asan -DCOHESION_SANITIZE=address
run_config native -DCOHESION_NATIVE=ON
echo "soa-cert: all configurations certified bit-identical"
